//! The wire protocol: a versioned, length-prefixed binary framing with
//! typed request/response payloads.
//!
//! ## Frame layout
//!
//! ```text
//! [ len: u32 LE ] [ version: u8 = 1 ] [ type: u8 ] [ payload ... ]
//! ```
//!
//! `len` counts everything after itself (version + type + payload) and is
//! capped at [`MAX_FRAME_BYTES`]; oversized, truncated or garbage frames
//! are rejected with a typed [`ProtoError`], never a panic. All integers
//! are little-endian; `f64` travels as its IEEE-754 bit pattern
//! ([`f64::to_bits`]), so a miss ratio computed on the server is
//! **bit-identical** after the round trip; strings are `u16` length +
//! UTF-8; vectors are `u32` count + elements.
//!
//! Every decoder checks that the payload is *exactly* consumed — trailing
//! bytes are as malformed as missing ones.

use repf_sampling::{DanglingSample, ReuseSample, StrideSample};
use repf_statstack::ModelParts;
use repf_trace::{AccessKind, Pc};
use repf_workloads::BenchmarkId;
use std::io::{Read, Write};

/// Protocol version this build speaks (the frame's third byte).
pub const PROTO_VERSION: u8 = 1;

/// Hard cap on one frame's `len` field (16 MiB): a submit batch larger
/// than this must be split by the client; anything bigger on the wire is
/// a protocol error, not an allocation.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Most sessions one [`Request::CoRun`] or [`Request::Place`] may name.
/// The composition walk is `O(sessions²)` per size, each remote session
/// may cost a model pull, and the placement search space grows
/// super-exponentially in the session count, so the server refuses
/// larger mixes with an `Unsupported` error rather than absorbing
/// unbounded work per request.
pub const MAX_CORUN_SESSIONS: usize = 16;

/// Why a frame or payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The length prefix was below the 2-byte (version + type) minimum.
    TooShort,
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversized(u32),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown message-type byte.
    BadType(u8),
    /// Payload ended before a field, or a field was out of range.
    Malformed(&'static str),
    /// Payload had bytes left over after the last field.
    TrailingBytes(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::TooShort => write!(f, "frame shorter than version+type"),
            ProtoError::Oversized(n) => write!(f, "frame of {n} bytes exceeds cap"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadType(t) => write!(f, "unknown message type {t:#04x}"),
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Machine-readable error category carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame or payload did not decode.
    Malformed,
    /// Named session does not exist.
    UnknownSession,
    /// Benchmark index out of range.
    UnknownBenchmark,
    /// Submitted batch disagrees with the session's line size.
    InconsistentBatch,
    /// Request understood but refused (e.g. empty size list).
    Unsupported,
    /// Server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownSession => 2,
            ErrorCode::UnknownBenchmark => 3,
            ErrorCode::InconsistentBatch => 4,
            ErrorCode::Unsupported => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_u16(v: u16) -> Result<Self, ProtoError> {
        Ok(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownSession,
            3 => ErrorCode::UnknownBenchmark,
            4 => ErrorCode::InconsistentBatch,
            5 => ErrorCode::Unsupported,
            6 => ErrorCode::Internal,
            _ => return Err(ProtoError::Malformed("error code")),
        })
    }
}

/// What a query addresses: a client-submitted session or a built-in
/// benchmark (profiled server-side, shared through the plan cache).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// A named session populated by [`Request::Submit`].
    Session(String),
    /// One of the 12 built-in Table I benchmarks.
    Benchmark(BenchmarkId),
}

/// Which Table II machine a plan query analyzes for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineId {
    /// AMD Phenom II X4.
    Amd,
    /// Intel Core i7-2600K.
    Intel,
}

/// One batch of sparse-sampler output submitted to a session. Mirrors the
/// fields of [`repf_sampling::Profile`] so a profile can be shipped
/// losslessly (possibly split over several batches).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SampleBatch {
    /// References covered by this batch (accumulates on the session).
    pub total_refs: u64,
    /// Mean sampling period the batch was gathered at.
    pub sample_period: u64,
    /// Cache-line size the watchpoints used (must match across batches).
    pub line_bytes: u64,
    /// Completed reuse samples.
    pub reuse: Vec<ReuseSample>,
    /// Never-reused samples.
    pub dangling: Vec<DanglingSample>,
    /// Completed stride samples.
    pub strides: Vec<StrideSample>,
}

impl SampleBatch {
    /// A batch carrying one whole profile.
    pub fn from_profile(p: &repf_sampling::Profile) -> Self {
        SampleBatch {
            total_refs: p.total_refs,
            sample_period: p.sample_period,
            line_bytes: p.line_bytes,
            reuse: p.reuse.clone(),
            dangling: p.dangling.clone(),
            strides: p.strides.clone(),
        }
    }
}

/// One prefetch directive on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectiveWire {
    /// Instrumented load.
    pub pc: u32,
    /// Lookahead in bytes.
    pub distance_bytes: i64,
    /// Stride the distance was computed from.
    pub stride: i64,
    /// Non-temporal hint.
    pub nta: bool,
}

/// A prefetch plan on the wire: directives in ascending PC order plus the
/// Δ the distances were computed with.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanWire {
    /// Cycles-per-memop Δ used for the distance computation.
    pub delta: f64,
    /// Directives, sorted by PC.
    pub directives: Vec<DirectiveWire>,
}

impl PlanWire {
    /// Wire form of a library plan (directives in sorted-PC order).
    pub fn from_plan(plan: &repf_core::PrefetchPlan, delta: f64) -> Self {
        PlanWire {
            delta,
            directives: plan
                .iter_sorted()
                .map(|(pc, d)| DirectiveWire {
                    pc: pc.0,
                    distance_bytes: d.distance_bytes,
                    stride: d.stride,
                    nta: d.nta,
                })
                .collect(),
        }
    }

    /// Rebuild the library plan this wire form describes.
    pub fn to_plan(&self) -> repf_core::PrefetchPlan {
        let mut plan = repf_core::PrefetchPlan::empty();
        for d in &self.directives {
            plan.insert(
                Pc(d.pc),
                repf_core::PrefetchDirective {
                    distance_bytes: d.distance_bytes,
                    nta: d.nta,
                    stride: d.stride,
                },
            );
        }
        plan
    }
}

/// A fitted StatStack model on the wire: the serialization of
/// [`repf_statstack::ModelParts`], shipped between cluster nodes so a
/// session profiled on its owner is never refit elsewhere. Canonical
/// ordering (sorted distances, PC-sorted per-PC entries) means the wire
/// bytes are a pure function of the model and a round trip reassembles a
/// bit-identical fit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelWire {
    /// Line size the underlying profile used.
    pub line_bytes: u64,
    /// Dangling (never-reused) sample count.
    pub dangling: u64,
    /// All completed distances, sorted ascending.
    pub sorted: Vec<u64>,
    /// Per-PC `(pc, dangling, sorted distances)`, sorted by PC.
    pub per_pc: Vec<(u32, u64, Vec<u64>)>,
}

impl ModelWire {
    /// Wire form of disassembled model parts.
    pub fn from_parts(parts: &ModelParts) -> Self {
        ModelWire {
            line_bytes: parts.line_bytes,
            dangling: parts.dangling,
            sorted: parts.sorted.clone(),
            per_pc: parts
                .per_pc
                .iter()
                .map(|(pc, distances, dangling)| (pc.0, *dangling, distances.clone()))
                .collect(),
        }
    }

    /// Rebuild the model parts this wire form describes.
    pub fn to_parts(&self) -> ModelParts {
        ModelParts {
            line_bytes: self.line_bytes,
            sorted: self.sorted.clone(),
            dangling: self.dangling,
            per_pc: self
                .per_pc
                .iter()
                .map(|(pc, dangling, distances)| (Pc(*pc), distances.clone(), *dangling))
                .collect(),
        }
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Append a sample batch to the named session (created on first use).
    Submit {
        /// Session name (client-chosen key).
        session: String,
        /// The samples.
        batch: SampleBatch,
    },
    /// Application miss ratios at the given cache sizes (bytes).
    QueryMrc {
        /// Session or benchmark to model.
        target: Target,
        /// Cache sizes in bytes.
        sizes_bytes: Vec<u64>,
    },
    /// Per-PC miss ratios at the given cache sizes (bytes).
    QueryPcMrc {
        /// Session or benchmark to model.
        target: Target,
        /// The load instruction.
        pc: u32,
        /// Cache sizes in bytes.
        sizes_bytes: Vec<u64>,
    },
    /// Full prefetch plan (MDDLI + stride + distance + bypass).
    QueryPlan {
        /// Session or benchmark to analyze.
        target: Target,
        /// Machine whose hierarchy/latencies the analysis targets.
        machine: MachineId,
        /// Δ (cycles per memop) for session targets; benchmark targets
        /// use the server's measured Δ and ignore this.
        delta: f64,
    },
    /// Server metrics snapshot.
    Stats,
    /// Control message: stop accepting, drain in-flight work, exit.
    Shutdown,
    /// Cluster admin: report the node's current ring membership.
    RingGet,
    /// Cluster admin: adopt a new consistent-hash ring. The node
    /// synchronously migrates every session it no longer owns to the new
    /// owner before acknowledging; stale epochs are rejected (the ack
    /// carries the node's current epoch either way).
    RingSet {
        /// Monotone configuration epoch; must exceed the node's current.
        epoch: u64,
        /// Ring seed (all parties must agree).
        seed: u64,
        /// Virtual nodes per member.
        vnodes: u32,
        /// Member identities (advertised addresses).
        nodes: Vec<String>,
    },
    /// Peer message: handle the wrapped request on behalf of the sender.
    /// `frame` is an encoded [`Request`] body (version + type + payload,
    /// no length prefix). The receiver answers it *locally* — except
    /// when the session has a tombstone pointing at a newer owner and
    /// `hops` has budget left — so misdirected requests can never loop.
    PeerForward {
        /// Forwarding hops already taken (tombstone chains bound this).
        hops: u8,
        /// The wrapped request frame body.
        frame: Vec<u8>,
    },
    /// Peer message: install a migrated session — full profile, version
    /// counter, and the cached model fit if the exporter had one —
    /// replacing any local entry and clearing any tombstone.
    SessionImport {
        /// Session name.
        session: String,
        /// Version counter carried over from the exporting node.
        version: u64,
        /// The session's full accumulated profile.
        batch: SampleBatch,
        /// The exporter's cached fit for `version`, if it had one.
        model: Option<ModelWire>,
    },
    /// Peer message: fetch the cached model for `(session, version)` if
    /// this node has exactly that fit. Never triggers a fit.
    ModelPull {
        /// Session name.
        session: String,
        /// Exact version the fit must be for.
        version: u64,
    },
    /// Peer message: fetch the *current* fitted model of a live session,
    /// whatever its version — the co-run resolution path. Unlike
    /// [`ModelPull`](Request::ModelPull) this may trigger a fit on the
    /// owner (the same fit a local query would). The caller states the
    /// version it already holds; when the session is still at that
    /// version the reply carries the version number alone, sparing the
    /// model bytes.
    ModelPullCurrent {
        /// Session name.
        session: String,
        /// Version the caller has cached (`u64::MAX` = nothing cached).
        cached_version: u64,
    },
    /// Predicted shared-cache behaviour of the named sessions co-running
    /// on one cache: per-session miss ratios plus a mix-throughput
    /// estimate at each size. Sessions may live on other ring nodes; the
    /// receiving node resolves them via
    /// [`ModelPullCurrent`](Request::ModelPullCurrent).
    CoRun {
        /// Co-running sessions (order defines the reply order; no
        /// duplicates; at most `MAX_CORUN_SESSIONS` on the server).
        sessions: Vec<String>,
        /// Shared-cache sizes in bytes.
        sizes_bytes: Vec<u64>,
        /// Optional per-session interleaving intensities (one per
        /// session when non-empty). Empty means "infer from sample
        /// counts" — and encodes to the PR 9 wire bytes exactly, so
        /// recorded traces and digests predate this field unharmed.
        intensities: Vec<f64>,
    },
    /// Search for the partition of the named sessions into cache-sharing
    /// groups that minimizes the predicted aggregate shared miss ratio
    /// at one cache size (the `repf_statstack::placement` engine).
    /// Sessions may live on other ring nodes; the receiving node
    /// resolves them via [`ModelPullCurrent`](Request::ModelPullCurrent),
    /// so the reply is byte-identical from every member.
    Place {
        /// Sessions to place (no duplicates; at most
        /// `MAX_CORUN_SESSIONS` on the server).
        sessions: Vec<String>,
        /// Number of cache-sharing groups available.
        groups: u32,
        /// Sessions per group at most.
        capacity: u32,
        /// The shared-cache size each group competes for, in bytes.
        size_bytes: u64,
        /// Optional per-session intensities, as in
        /// [`CoRun`](Request::CoRun) (empty = infer from sample counts).
        intensities: Vec<f64>,
    },
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Batch accepted.
    Accepted {
        /// Bytes the session store holds after the submit.
        store_bytes: u64,
        /// Sessions evicted to make room.
        evicted: u32,
    },
    /// Application miss ratios, one per requested size.
    Mrc {
        /// Miss ratios (bit-exact f64s).
        ratios: Vec<f64>,
    },
    /// Per-PC miss ratios; `None` when the PC has no samples.
    PcMrc {
        /// Ratios, or `None` for an unsampled PC.
        ratios: Option<Vec<f64>>,
    },
    /// A prefetch plan.
    Plan(PlanWire),
    /// Metrics snapshot: `(name, value)` pairs in registry order.
    Stats(Vec<(String, f64)>),
    /// Acknowledges [`Request::Shutdown`]; the server drains and exits.
    ShuttingDown,
    /// Reply to [`Request::RingGet`]: the node's current ring.
    RingInfo {
        /// Current configuration epoch (0 = never clustered).
        epoch: u64,
        /// Ring seed.
        seed: u64,
        /// Virtual nodes per member.
        vnodes: u32,
        /// Member identities.
        nodes: Vec<String>,
        /// This node's advertised identity.
        self_addr: String,
    },
    /// Reply to [`Request::RingSet`]: the epoch now in force and how
    /// many sessions were migrated away while adopting it.
    RingAck {
        /// The node's epoch after the request (unchanged if stale).
        epoch: u64,
        /// Sessions exported to their new owners.
        migrated: u64,
    },
    /// Reply to [`Request::SessionImport`].
    Imported,
    /// Reply to [`Request::ModelPull`] /
    /// [`Request::ModelPullCurrent`]: the fit, if available.
    ModelEntry {
        /// The version `model` is for. Exact-version pulls echo the
        /// requested version; current-model pulls report the session's
        /// live version (0 when the session is unknown).
        version: u64,
        /// The fit — `None` on an exact-version cache miss, or when a
        /// current-model pull matched the caller's `cached_version`.
        model: Option<ModelWire>,
    },
    /// Reply to [`Request::CoRun`]: per-session predicted shared-cache
    /// miss ratios (request order) and the mix-throughput estimate, one
    /// entry per requested size. All f64s are bit-exact on the wire.
    CoRun {
        /// `(session, ratios)` per co-running session, in request order.
        per_session: Vec<(String, Vec<f64>)>,
        /// Weighted-speedup-style throughput estimate per size.
        throughput: Vec<f64>,
    },
    /// Reply to [`Request::Place`]: the searched-best assignment.
    /// Everything here — the counters included — is a deterministic
    /// function of the request and the session models, so replay
    /// digests cover the whole reply.
    Placement {
        /// Non-empty groups in canonical order (ordered by their
        /// earliest-named member; members in request-name order).
        groups: Vec<Vec<String>>,
        /// Σ over sessions of the predicted shared miss ratio
        /// (bit-exact f64) — the minimized objective.
        total_miss_ratio: f64,
        /// Σ over groups of the mix-throughput estimate.
        throughput: f64,
        /// Search-tree nodes the branch-and-bound visited.
        nodes_explored: u64,
        /// Branches cut by the admissible bound.
        pruned: u64,
    },
    /// The bounded request queue is full — retry later.
    Busy,
    /// The request failed.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// --- message type bytes ---
const T_PING: u8 = 0x01;
const T_SUBMIT: u8 = 0x02;
const T_QUERY_MRC: u8 = 0x03;
const T_QUERY_PC_MRC: u8 = 0x04;
const T_QUERY_PLAN: u8 = 0x05;
const T_STATS: u8 = 0x06;
const T_SHUTDOWN: u8 = 0x07;
const T_CO_RUN: u8 = 0x08;
const T_PLACE: u8 = 0x09;
const T_RING_GET: u8 = 0x10;
const T_RING_SET: u8 = 0x11;
const T_PEER_FORWARD: u8 = 0x12;
const T_SESSION_IMPORT: u8 = 0x13;
const T_MODEL_PULL: u8 = 0x14;
const T_MODEL_PULL_CURRENT: u8 = 0x15;
const T_PONG: u8 = 0x81;
const T_ACCEPTED: u8 = 0x82;
const T_MRC: u8 = 0x83;
const T_PC_MRC: u8 = 0x84;
const T_PLAN: u8 = 0x85;
const T_STATS_REPLY: u8 = 0x86;
const T_SHUTTING_DOWN: u8 = 0x87;
const T_CO_RUN_REPLY: u8 = 0x88;
const T_PLACE_REPLY: u8 = 0x89;
const T_RING_INFO: u8 = 0x90;
const T_RING_ACK: u8 = 0x91;
const T_IMPORTED: u8 = 0x92;
const T_MODEL_ENTRY: u8 = 0x93;
const T_BUSY: u8 = 0xE0;
const T_ERROR: u8 = 0xE1;

// --- encoding primitives ---

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn string(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn kind(&mut self, k: AccessKind) {
        self.u8(match k {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
        });
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Malformed("field past end of payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Malformed("non-utf8 string"))
    }
    fn kind(&mut self) -> Result<AccessKind, ProtoError> {
        match self.u8()? {
            0 => Ok(AccessKind::Load),
            1 => Ok(AccessKind::Store),
            _ => Err(ProtoError::Malformed("access kind")),
        }
    }

    /// Element count for a vector of at-least-`min_elem_bytes` elements.
    /// Bounding by the remaining payload keeps a hostile count from
    /// pre-allocating gigabytes.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(ProtoError::Malformed("count larger than payload"));
        }
        Ok(n)
    }

    /// True when payload bytes remain — how optional trailing fields
    /// (e.g. co-run intensities) detect their presence.
    fn has_remaining(&self) -> bool {
        self.pos < self.buf.len()
    }

    fn finish(self) -> Result<(), ProtoError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(left))
        }
    }
}

fn enc_target(e: &mut Enc, t: &Target) {
    match t {
        Target::Session(name) => {
            e.u8(0);
            e.string(name);
        }
        Target::Benchmark(id) => {
            e.u8(1);
            let ix = BenchmarkId::all().iter().position(|b| b == id).unwrap();
            e.u8(ix as u8);
        }
    }
}

fn dec_target(d: &mut Dec) -> Result<Target, ProtoError> {
    match d.u8()? {
        0 => Ok(Target::Session(d.string()?)),
        1 => {
            let ix = d.u8()? as usize;
            BenchmarkId::all()
                .get(ix)
                .copied()
                .map(Target::Benchmark)
                .ok_or(ProtoError::Malformed("benchmark index"))
        }
        _ => Err(ProtoError::Malformed("target tag")),
    }
}

fn enc_batch(e: &mut Enc, b: &SampleBatch) {
    e.u64(b.total_refs);
    e.u64(b.sample_period);
    e.u64(b.line_bytes);
    e.u32(b.reuse.len() as u32);
    for r in &b.reuse {
        e.u32(r.start_pc.0);
        e.kind(r.start_kind);
        e.u32(r.end_pc.0);
        e.kind(r.end_kind);
        e.u64(r.distance);
        e.u64(r.start_index);
    }
    e.u32(b.dangling.len() as u32);
    for s in &b.dangling {
        e.u32(s.pc.0);
        e.kind(s.kind);
        e.u64(s.start_index);
    }
    e.u32(b.strides.len() as u32);
    for s in &b.strides {
        e.u32(s.pc.0);
        e.kind(s.kind);
        e.i64(s.stride);
        e.u64(s.recurrence);
    }
}

fn dec_batch(d: &mut Dec) -> Result<SampleBatch, ProtoError> {
    let total_refs = d.u64()?;
    let sample_period = d.u64()?;
    let line_bytes = d.u64()?;
    let n = d.count(26)?;
    let mut reuse = Vec::with_capacity(n);
    for _ in 0..n {
        reuse.push(ReuseSample {
            start_pc: Pc(d.u32()?),
            start_kind: d.kind()?,
            end_pc: Pc(d.u32()?),
            end_kind: d.kind()?,
            distance: d.u64()?,
            start_index: d.u64()?,
        });
    }
    let n = d.count(13)?;
    let mut dangling = Vec::with_capacity(n);
    for _ in 0..n {
        dangling.push(DanglingSample {
            pc: Pc(d.u32()?),
            kind: d.kind()?,
            start_index: d.u64()?,
        });
    }
    let n = d.count(21)?;
    let mut strides = Vec::with_capacity(n);
    for _ in 0..n {
        strides.push(StrideSample {
            pc: Pc(d.u32()?),
            kind: d.kind()?,
            stride: d.i64()?,
            recurrence: d.u64()?,
        });
    }
    Ok(SampleBatch {
        total_refs,
        sample_period,
        line_bytes,
        reuse,
        dangling,
        strides,
    })
}

fn enc_nodes(e: &mut Enc, nodes: &[String]) {
    e.u32(nodes.len() as u32);
    for n in nodes {
        e.string(n);
    }
}

fn dec_nodes(d: &mut Dec) -> Result<Vec<String>, ProtoError> {
    let n = d.count(2)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.string()?);
    }
    Ok(v)
}

fn enc_bytes(e: &mut Enc, bytes: &[u8]) {
    e.u32(bytes.len() as u32);
    e.0.extend_from_slice(bytes);
}

fn dec_bytes(d: &mut Dec) -> Result<Vec<u8>, ProtoError> {
    let n = d.count(1)?;
    Ok(d.take(n)?.to_vec())
}

fn enc_u64s(e: &mut Enc, v: &[u64]) {
    e.u32(v.len() as u32);
    for &x in v {
        e.u64(x);
    }
}

fn dec_u64s(d: &mut Dec) -> Result<Vec<u64>, ProtoError> {
    let n = d.count(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.u64()?);
    }
    Ok(v)
}

fn enc_model(e: &mut Enc, m: &ModelWire) {
    e.u64(m.line_bytes);
    e.u64(m.dangling);
    enc_u64s(e, &m.sorted);
    e.u32(m.per_pc.len() as u32);
    for (pc, dangling, distances) in &m.per_pc {
        e.u32(*pc);
        e.u64(*dangling);
        enc_u64s(e, distances);
    }
}

fn dec_model(d: &mut Dec) -> Result<ModelWire, ProtoError> {
    let line_bytes = d.u64()?;
    let dangling = d.u64()?;
    let sorted = dec_u64s(d)?;
    let n = d.count(16)?; // pc + dangling + count
    let mut per_pc = Vec::with_capacity(n);
    for _ in 0..n {
        let pc = d.u32()?;
        let pc_dangling = d.u64()?;
        per_pc.push((pc, pc_dangling, dec_u64s(d)?));
    }
    Ok(ModelWire {
        line_bytes,
        dangling,
        sorted,
        per_pc,
    })
}

fn enc_f64s(e: &mut Enc, v: &[f64]) {
    e.u32(v.len() as u32);
    for &x in v {
        e.f64(x);
    }
}

fn dec_f64s(d: &mut Dec) -> Result<Vec<f64>, ProtoError> {
    let n = d.count(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.f64()?);
    }
    Ok(v)
}

fn enc_sizes(e: &mut Enc, sizes: &[u64]) {
    e.u32(sizes.len() as u32);
    for &s in sizes {
        e.u64(s);
    }
}

fn dec_sizes(d: &mut Dec) -> Result<Vec<u64>, ProtoError> {
    let n = d.count(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.u64()?);
    }
    Ok(v)
}

impl Request {
    /// Serialize into a full frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        match self {
            Request::Ping => e.u8(T_PING),
            Request::Submit { session, batch } => {
                e.u8(T_SUBMIT);
                e.string(session);
                enc_batch(&mut e, batch);
            }
            Request::QueryMrc {
                target,
                sizes_bytes,
            } => {
                e.u8(T_QUERY_MRC);
                enc_target(&mut e, target);
                enc_sizes(&mut e, sizes_bytes);
            }
            Request::QueryPcMrc {
                target,
                pc,
                sizes_bytes,
            } => {
                e.u8(T_QUERY_PC_MRC);
                enc_target(&mut e, target);
                e.u32(*pc);
                enc_sizes(&mut e, sizes_bytes);
            }
            Request::QueryPlan {
                target,
                machine,
                delta,
            } => {
                e.u8(T_QUERY_PLAN);
                enc_target(&mut e, target);
                e.u8(match machine {
                    MachineId::Amd => 0,
                    MachineId::Intel => 1,
                });
                e.f64(*delta);
            }
            Request::Stats => e.u8(T_STATS),
            Request::Shutdown => e.u8(T_SHUTDOWN),
            Request::RingGet => e.u8(T_RING_GET),
            Request::RingSet {
                epoch,
                seed,
                vnodes,
                nodes,
            } => {
                e.u8(T_RING_SET);
                e.u64(*epoch);
                e.u64(*seed);
                e.u32(*vnodes);
                enc_nodes(&mut e, nodes);
            }
            Request::PeerForward { hops, frame } => {
                e.u8(T_PEER_FORWARD);
                e.u8(*hops);
                enc_bytes(&mut e, frame);
            }
            Request::SessionImport {
                session,
                version,
                batch,
                model,
            } => {
                e.u8(T_SESSION_IMPORT);
                e.string(session);
                e.u64(*version);
                enc_batch(&mut e, batch);
                match model {
                    None => e.u8(0),
                    Some(m) => {
                        e.u8(1);
                        enc_model(&mut e, m);
                    }
                }
            }
            Request::ModelPull { session, version } => {
                e.u8(T_MODEL_PULL);
                e.string(session);
                e.u64(*version);
            }
            Request::ModelPullCurrent {
                session,
                cached_version,
            } => {
                e.u8(T_MODEL_PULL_CURRENT);
                e.string(session);
                e.u64(*cached_version);
            }
            Request::CoRun {
                sessions,
                sizes_bytes,
                intensities,
            } => {
                e.u8(T_CO_RUN);
                enc_nodes(&mut e, sessions);
                enc_sizes(&mut e, sizes_bytes);
                // Trailing optional field: omitted entirely when empty,
                // so default-intensity requests encode to the PR 9
                // bytes and recorded traces stay loadable bit-for-bit.
                if !intensities.is_empty() {
                    enc_f64s(&mut e, intensities);
                }
            }
            Request::Place {
                sessions,
                groups,
                capacity,
                size_bytes,
                intensities,
            } => {
                e.u8(T_PLACE);
                enc_nodes(&mut e, sessions);
                e.u32(*groups);
                e.u32(*capacity);
                e.u64(*size_bytes);
                enc_f64s(&mut e, intensities);
            }
        }
        frame(e.0)
    }

    /// Decode a frame body (version + type + payload, no length prefix).
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut d = Dec::new(body);
        check_version(&mut d)?;
        let t = d.u8()?;
        let req = match t {
            T_PING => Request::Ping,
            T_SUBMIT => Request::Submit {
                session: d.string()?,
                batch: dec_batch(&mut d)?,
            },
            T_QUERY_MRC => Request::QueryMrc {
                target: dec_target(&mut d)?,
                sizes_bytes: dec_sizes(&mut d)?,
            },
            T_QUERY_PC_MRC => Request::QueryPcMrc {
                target: dec_target(&mut d)?,
                pc: d.u32()?,
                sizes_bytes: dec_sizes(&mut d)?,
            },
            T_QUERY_PLAN => Request::QueryPlan {
                target: dec_target(&mut d)?,
                machine: match d.u8()? {
                    0 => MachineId::Amd,
                    1 => MachineId::Intel,
                    _ => return Err(ProtoError::Malformed("machine id")),
                },
                delta: d.f64()?,
            },
            T_STATS => Request::Stats,
            T_SHUTDOWN => Request::Shutdown,
            T_RING_GET => Request::RingGet,
            T_RING_SET => Request::RingSet {
                epoch: d.u64()?,
                seed: d.u64()?,
                vnodes: d.u32()?,
                nodes: dec_nodes(&mut d)?,
            },
            T_PEER_FORWARD => Request::PeerForward {
                hops: d.u8()?,
                frame: dec_bytes(&mut d)?,
            },
            T_SESSION_IMPORT => Request::SessionImport {
                session: d.string()?,
                version: d.u64()?,
                batch: dec_batch(&mut d)?,
                model: match d.u8()? {
                    0 => None,
                    1 => Some(dec_model(&mut d)?),
                    _ => return Err(ProtoError::Malformed("option tag")),
                },
            },
            T_MODEL_PULL => Request::ModelPull {
                session: d.string()?,
                version: d.u64()?,
            },
            T_MODEL_PULL_CURRENT => Request::ModelPullCurrent {
                session: d.string()?,
                cached_version: d.u64()?,
            },
            T_CO_RUN => {
                let sessions = dec_nodes(&mut d)?;
                let sizes_bytes = dec_sizes(&mut d)?;
                let intensities = if d.has_remaining() {
                    dec_f64s(&mut d)?
                } else {
                    Vec::new()
                };
                Request::CoRun {
                    sessions,
                    sizes_bytes,
                    intensities,
                }
            }
            T_PLACE => Request::Place {
                sessions: dec_nodes(&mut d)?,
                groups: d.u32()?,
                capacity: d.u32()?,
                size_bytes: d.u64()?,
                intensities: dec_f64s(&mut d)?,
            },
            other => return Err(ProtoError::BadType(other)),
        };
        d.finish()?;
        Ok(req)
    }

    /// The metrics label for this request type.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Submit { .. } => "submit",
            Request::QueryMrc { .. } => "mrc",
            Request::QueryPcMrc { .. } => "pc_mrc",
            Request::QueryPlan { .. } => "plan",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::RingGet => "ring_get",
            Request::RingSet { .. } => "ring_set",
            Request::PeerForward { .. } => "peer_forward",
            Request::SessionImport { .. } => "session_import",
            Request::ModelPull { .. } => "model_pull",
            Request::ModelPullCurrent { .. } => "model_pull_current",
            Request::CoRun { .. } => "co_run",
            Request::Place { .. } => "place",
        }
    }

    /// True for the node-to-node / cluster-admin message kinds: a
    /// connection that sends one is a peer (or the ring CLI), not a
    /// latency-sensitive client, and is exempted from idle eviction.
    pub fn is_peer_kind(&self) -> bool {
        matches!(
            self,
            Request::RingGet
                | Request::RingSet { .. }
                | Request::PeerForward { .. }
                | Request::SessionImport { .. }
                | Request::ModelPull { .. }
                | Request::ModelPullCurrent { .. }
        )
    }
}

impl Response {
    /// Serialize into a full frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        match self {
            Response::Pong => e.u8(T_PONG),
            Response::Accepted {
                store_bytes,
                evicted,
            } => {
                e.u8(T_ACCEPTED);
                e.u64(*store_bytes);
                e.u32(*evicted);
            }
            Response::Mrc { ratios } => {
                e.u8(T_MRC);
                e.u32(ratios.len() as u32);
                for &r in ratios {
                    e.f64(r);
                }
            }
            Response::PcMrc { ratios } => {
                e.u8(T_PC_MRC);
                match ratios {
                    None => e.u8(0),
                    Some(rs) => {
                        e.u8(1);
                        e.u32(rs.len() as u32);
                        for &r in rs {
                            e.f64(r);
                        }
                    }
                }
            }
            Response::Plan(p) => {
                e.u8(T_PLAN);
                e.f64(p.delta);
                e.u32(p.directives.len() as u32);
                for d in &p.directives {
                    e.u32(d.pc);
                    e.i64(d.distance_bytes);
                    e.i64(d.stride);
                    e.u8(d.nta as u8);
                }
            }
            Response::Stats(pairs) => {
                e.u8(T_STATS_REPLY);
                e.u32(pairs.len() as u32);
                for (k, v) in pairs {
                    e.string(k);
                    e.f64(*v);
                }
            }
            Response::ShuttingDown => e.u8(T_SHUTTING_DOWN),
            Response::RingInfo {
                epoch,
                seed,
                vnodes,
                nodes,
                self_addr,
            } => {
                e.u8(T_RING_INFO);
                e.u64(*epoch);
                e.u64(*seed);
                e.u32(*vnodes);
                enc_nodes(&mut e, nodes);
                e.string(self_addr);
            }
            Response::RingAck { epoch, migrated } => {
                e.u8(T_RING_ACK);
                e.u64(*epoch);
                e.u64(*migrated);
            }
            Response::Imported => e.u8(T_IMPORTED),
            Response::ModelEntry { version, model } => {
                e.u8(T_MODEL_ENTRY);
                e.u64(*version);
                match model {
                    None => e.u8(0),
                    Some(m) => {
                        e.u8(1);
                        enc_model(&mut e, m);
                    }
                }
            }
            Response::CoRun {
                per_session,
                throughput,
            } => {
                e.u8(T_CO_RUN_REPLY);
                e.u32(per_session.len() as u32);
                for (name, ratios) in per_session {
                    e.string(name);
                    e.u32(ratios.len() as u32);
                    for &r in ratios {
                        e.f64(r);
                    }
                }
                e.u32(throughput.len() as u32);
                for &t in throughput {
                    e.f64(t);
                }
            }
            Response::Placement {
                groups,
                total_miss_ratio,
                throughput,
                nodes_explored,
                pruned,
            } => {
                e.u8(T_PLACE_REPLY);
                e.u32(groups.len() as u32);
                for g in groups {
                    enc_nodes(&mut e, g);
                }
                e.f64(*total_miss_ratio);
                e.f64(*throughput);
                e.u64(*nodes_explored);
                e.u64(*pruned);
            }
            Response::Busy => e.u8(T_BUSY),
            Response::Error { code, message } => {
                e.u8(T_ERROR);
                e.u16(code.to_u16());
                e.string(message);
            }
        }
        frame(e.0)
    }

    /// Decode a frame body (version + type + payload, no length prefix).
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Dec::new(body);
        check_version(&mut d)?;
        let t = d.u8()?;
        let resp = match t {
            T_PONG => Response::Pong,
            T_ACCEPTED => Response::Accepted {
                store_bytes: d.u64()?,
                evicted: d.u32()?,
            },
            T_MRC => {
                let n = d.count(8)?;
                let mut ratios = Vec::with_capacity(n);
                for _ in 0..n {
                    ratios.push(d.f64()?);
                }
                Response::Mrc { ratios }
            }
            T_PC_MRC => {
                let present = d.u8()?;
                let ratios = match present {
                    0 => None,
                    1 => {
                        let n = d.count(8)?;
                        let mut rs = Vec::with_capacity(n);
                        for _ in 0..n {
                            rs.push(d.f64()?);
                        }
                        Some(rs)
                    }
                    _ => return Err(ProtoError::Malformed("option tag")),
                };
                Response::PcMrc { ratios }
            }
            T_PLAN => {
                let delta = d.f64()?;
                let n = d.count(21)?;
                let mut directives = Vec::with_capacity(n);
                for _ in 0..n {
                    directives.push(DirectiveWire {
                        pc: d.u32()?,
                        distance_bytes: d.i64()?,
                        stride: d.i64()?,
                        nta: match d.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(ProtoError::Malformed("nta flag")),
                        },
                    });
                }
                Response::Plan(PlanWire { delta, directives })
            }
            T_STATS_REPLY => {
                let n = d.count(10)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = d.string()?;
                    let v = d.f64()?;
                    pairs.push((k, v));
                }
                Response::Stats(pairs)
            }
            T_SHUTTING_DOWN => Response::ShuttingDown,
            T_RING_INFO => Response::RingInfo {
                epoch: d.u64()?,
                seed: d.u64()?,
                vnodes: d.u32()?,
                nodes: dec_nodes(&mut d)?,
                self_addr: d.string()?,
            },
            T_RING_ACK => Response::RingAck {
                epoch: d.u64()?,
                migrated: d.u64()?,
            },
            T_IMPORTED => Response::Imported,
            T_MODEL_ENTRY => Response::ModelEntry {
                version: d.u64()?,
                model: match d.u8()? {
                    0 => None,
                    1 => Some(dec_model(&mut d)?),
                    _ => return Err(ProtoError::Malformed("option tag")),
                },
            },
            T_CO_RUN_REPLY => {
                let n = d.count(6)?; // string len + ratio count
                let mut per_session = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = d.string()?;
                    let k = d.count(8)?;
                    let mut ratios = Vec::with_capacity(k);
                    for _ in 0..k {
                        ratios.push(d.f64()?);
                    }
                    per_session.push((name, ratios));
                }
                let k = d.count(8)?;
                let mut throughput = Vec::with_capacity(k);
                for _ in 0..k {
                    throughput.push(d.f64()?);
                }
                Response::CoRun {
                    per_session,
                    throughput,
                }
            }
            T_PLACE_REPLY => {
                let n = d.count(4)?; // at least a member count per group
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    groups.push(dec_nodes(&mut d)?);
                }
                Response::Placement {
                    groups,
                    total_miss_ratio: d.f64()?,
                    throughput: d.f64()?,
                    nodes_explored: d.u64()?,
                    pruned: d.u64()?,
                }
            }
            T_BUSY => Response::Busy,
            T_ERROR => Response::Error {
                code: ErrorCode::from_u16(d.u16()?)?,
                message: d.string()?,
            },
            other => return Err(ProtoError::BadType(other)),
        };
        d.finish()?;
        Ok(resp)
    }
}

fn check_version(d: &mut Dec) -> Result<(), ProtoError> {
    match d.u8() {
        Ok(PROTO_VERSION) => Ok(()),
        Ok(v) => Err(ProtoError::BadVersion(v)),
        Err(_) => Err(ProtoError::TooShort),
    }
}

/// Prepend the length prefix to a frame body.
fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Read one frame body from `r`. Returns:
///
/// * `Ok(Some(body))` — a frame arrived (body = version + type + payload);
/// * `Ok(None)` — clean EOF at a frame boundary;
/// * `Err(FrameReadError::Proto)` — length prefix violated the protocol
///   (the stream is now unsynchronized and should be closed after an
///   error response);
/// * `Err(FrameReadError::Io)` — transport error / timeout / mid-frame EOF.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameReadError> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    if len < 2 {
        return Err(FrameReadError::Proto(ProtoError::TooShort));
    }
    if len > MAX_FRAME_BYTES {
        return Err(FrameReadError::Proto(ProtoError::Oversized(len)));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameReadError::Io)?;
    Ok(Some(body))
}

/// Why [`read_frame`] failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// Transport error (including timeouts and mid-frame EOF).
    Io(std::io::Error),
    /// The length prefix itself was invalid.
    Proto(ProtoError),
}

impl From<std::io::Error> for FrameReadError {
    fn from(e: std::io::Error) -> Self {
        FrameReadError::Io(e)
    }
}

/// `read_exact` that distinguishes clean EOF before the first byte
/// (`Ok(false)`) from a mid-buffer EOF (error).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(FrameReadError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(true)
}

/// Write a fully-encoded frame to `w` and flush it.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_is_len_version_type() {
        let f = Request::Ping.encode();
        assert_eq!(&f[0..4], &2u32.to_le_bytes());
        assert_eq!(f[4], PROTO_VERSION);
        assert_eq!(f[5], T_PING);
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn request_roundtrip_all_types() {
        let reqs = vec![
            Request::Ping,
            Request::Submit {
                session: "s1".into(),
                batch: SampleBatch {
                    total_refs: 10,
                    sample_period: 3,
                    line_bytes: 64,
                    reuse: vec![ReuseSample {
                        start_pc: Pc(1),
                        start_kind: AccessKind::Load,
                        end_pc: Pc(2),
                        end_kind: AccessKind::Store,
                        distance: 5,
                        start_index: 7,
                    }],
                    dangling: vec![DanglingSample {
                        pc: Pc(3),
                        kind: AccessKind::Load,
                        start_index: 9,
                    }],
                    strides: vec![StrideSample {
                        pc: Pc(4),
                        kind: AccessKind::Load,
                        stride: -64,
                        recurrence: 11,
                    }],
                },
            },
            Request::QueryMrc {
                target: Target::Session("abc".into()),
                sizes_bytes: vec![1024, 65536],
            },
            Request::QueryPcMrc {
                target: Target::Benchmark(BenchmarkId::Mcf),
                pc: 42,
                sizes_bytes: vec![32768],
            },
            Request::QueryPlan {
                target: Target::Benchmark(BenchmarkId::Libquantum),
                machine: MachineId::Intel,
                delta: 2.25,
            },
            Request::Stats,
            Request::Shutdown,
            Request::CoRun {
                sessions: vec!["a".into(), "b".into(), "c".into()],
                sizes_bytes: vec![1 << 16, 6 << 20],
                intensities: vec![],
            },
            Request::CoRun {
                sessions: vec!["a".into(), "b".into()],
                sizes_bytes: vec![1 << 16],
                intensities: vec![1000.0, 0.25],
            },
            Request::Place {
                sessions: vec!["a".into(), "b".into(), "c".into(), "d".into()],
                groups: 2,
                capacity: 2,
                size_bytes: 6 << 20,
                intensities: vec![],
            },
            Request::Place {
                sessions: vec!["a".into(), "b".into()],
                groups: 1,
                capacity: 2,
                size_bytes: 1 << 16,
                intensities: vec![2.5, f64::MIN_POSITIVE],
            },
        ];
        for req in reqs {
            let f = req.encode();
            let body = &f[4..];
            assert_eq!(Request::decode(body).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip_all_types() {
        let resps = vec![
            Response::Pong,
            Response::Accepted {
                store_bytes: 1 << 20,
                evicted: 3,
            },
            Response::Mrc {
                ratios: vec![0.5, 0.25, f64::MIN_POSITIVE],
            },
            Response::PcMrc { ratios: None },
            Response::PcMrc {
                ratios: Some(vec![1.0, 0.0]),
            },
            Response::Plan(PlanWire {
                delta: 1.5,
                directives: vec![DirectiveWire {
                    pc: 9,
                    distance_bytes: -4096,
                    stride: -64,
                    nta: true,
                }],
            }),
            Response::Stats(vec![("req.ping".into(), 2.0)]),
            Response::ShuttingDown,
            Response::Busy,
            Response::Error {
                code: ErrorCode::UnknownSession,
                message: "no such session".into(),
            },
            Response::CoRun {
                per_session: vec![
                    ("a".into(), vec![0.5, 0.25]),
                    ("b".into(), vec![1.0, f64::MIN_POSITIVE]),
                ],
                throughput: vec![1.75, 2.0],
            },
            Response::CoRun {
                per_session: vec![],
                throughput: vec![],
            },
            Response::Placement {
                groups: vec![
                    vec!["a".into(), "c".into()],
                    vec!["b".into(), "d".into()],
                ],
                total_miss_ratio: 0.375,
                throughput: 3.5,
                nodes_explored: 421,
                pruned: 77,
            },
            Response::Placement {
                groups: vec![vec!["solo".into()]],
                total_miss_ratio: f64::MIN_POSITIVE,
                throughput: 1.0,
                nodes_explored: 1,
                pruned: 0,
            },
        ];
        for resp in resps {
            let f = resp.encode();
            assert_eq!(Response::decode(&f[4..]).unwrap(), resp, "{resp:?}");
        }
    }

    fn sample_model() -> ModelWire {
        ModelWire {
            line_bytes: 64,
            dangling: 3,
            sorted: vec![1, 5, 9, 400_000],
            per_pc: vec![(100, 1, vec![5, 400_000]), (200, 2, vec![1, 9])],
        }
    }

    #[test]
    fn peer_request_roundtrip_all_types() {
        let reqs = vec![
            Request::RingGet,
            Request::RingSet {
                epoch: 7,
                seed: 0xDEAD,
                vnodes: 64,
                nodes: vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()],
            },
            Request::PeerForward {
                hops: 2,
                frame: Request::Ping.encode()[4..].to_vec(),
            },
            Request::SessionImport {
                session: "replay-s1".into(),
                version: 4,
                batch: SampleBatch {
                    total_refs: 99,
                    sample_period: 7,
                    line_bytes: 64,
                    reuse: vec![],
                    dangling: vec![],
                    strides: vec![],
                },
                model: Some(sample_model()),
            },
            Request::SessionImport {
                session: "bare".into(),
                version: 1,
                batch: SampleBatch::default(),
                model: None,
            },
            Request::ModelPull {
                session: "s".into(),
                version: 2,
            },
            Request::ModelPullCurrent {
                session: "s".into(),
                cached_version: u64::MAX,
            },
        ];
        for req in reqs {
            let f = req.encode();
            assert_eq!(Request::decode(&f[4..]).unwrap(), req, "{req:?}");
            for cut in 0..f.len() - 5 {
                assert!(Request::decode(&f[4..4 + cut]).is_err(), "truncation at {cut}");
            }
        }
    }

    #[test]
    fn peer_response_roundtrip_all_types() {
        let resps = vec![
            Response::RingInfo {
                epoch: 3,
                seed: 11,
                vnodes: 32,
                nodes: vec!["a:1".into(), "b:2".into(), "c:3".into()],
                self_addr: "b:2".into(),
            },
            Response::RingAck {
                epoch: 3,
                migrated: 17,
            },
            Response::Imported,
            Response::ModelEntry {
                version: 0,
                model: None,
            },
            Response::ModelEntry {
                version: 9,
                model: Some(sample_model()),
            },
        ];
        for resp in resps {
            let f = resp.encode();
            assert_eq!(Response::decode(&f[4..]).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn model_wire_parts_roundtrip() {
        use repf_statstack::StatStackModel;
        let wire = sample_model();
        let parts = wire.to_parts();
        assert_eq!(ModelWire::from_parts(&parts), wire);
        let model = StatStackModel::from_parts(parts);
        assert_eq!(model.sample_count(), 4 + 3);
        assert_eq!(model.line_bytes(), 64);
        assert_eq!(
            ModelWire::from_parts(&model.to_parts()),
            wire,
            "model → parts → wire is canonical"
        );
    }

    #[test]
    fn hostile_model_counts_do_not_allocate() {
        // A ModelEntry claiming u32::MAX sorted distances in 4 bytes.
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        e.u8(T_MODEL_ENTRY);
        e.u64(3); // version
        e.u8(1);
        e.u64(64);
        e.u64(0);
        e.u32(u32::MAX);
        assert!(matches!(
            Response::decode(&e.0),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_corun_counts_do_not_allocate() {
        // A CoRun request claiming u32::MAX session names in 4 bytes.
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        e.u8(T_CO_RUN);
        e.u32(u32::MAX);
        assert!(matches!(
            Request::decode(&e.0),
            Err(ProtoError::Malformed(_))
        ));
        // A CoRun reply claiming u32::MAX per-session entries.
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        e.u8(T_CO_RUN_REPLY);
        e.u32(u32::MAX);
        assert!(matches!(
            Response::decode(&e.0),
            Err(ProtoError::Malformed(_))
        ));
        // Plausible outer count, hostile inner ratio count.
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        e.u8(T_CO_RUN_REPLY);
        e.u32(1);
        e.string("s");
        e.u32(u32::MAX);
        assert!(matches!(
            Response::decode(&e.0),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn corun_wire_without_intensities_is_the_pr9_encoding() {
        // Empty intensities must vanish from the wire entirely: the
        // committed golden trace (and every recorded trace) carries
        // intensity-free CoRun frames that must decode unchanged.
        let req = Request::CoRun {
            sessions: vec!["a".into(), "b".into()],
            sizes_bytes: vec![1 << 20],
            intensities: vec![],
        };
        let f = req.encode();
        let mut by_hand = Enc(Vec::new());
        by_hand.u8(PROTO_VERSION);
        by_hand.u8(T_CO_RUN);
        enc_nodes(&mut by_hand, &["a".into(), "b".into()]);
        enc_sizes(&mut by_hand, &[1 << 20]);
        assert_eq!(&f[4..], &by_hand.0[..], "no trailing field when empty");
        assert_eq!(Request::decode(&f[4..]).unwrap(), req);
    }

    #[test]
    fn hostile_place_counts_do_not_allocate() {
        // A Place request claiming u32::MAX session names in 4 bytes.
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        e.u8(T_PLACE);
        e.u32(u32::MAX);
        assert!(matches!(
            Request::decode(&e.0),
            Err(ProtoError::Malformed(_))
        ));
        // Plausible sessions, hostile intensity count.
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        e.u8(T_PLACE);
        enc_nodes(&mut e, &["s".into()]);
        e.u32(2);
        e.u32(2);
        e.u64(1 << 20);
        e.u32(u32::MAX);
        assert!(matches!(
            Request::decode(&e.0),
            Err(ProtoError::Malformed(_))
        ));
        // A Placement reply claiming u32::MAX groups.
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        e.u8(T_PLACE_REPLY);
        e.u32(u32::MAX);
        assert!(matches!(
            Response::decode(&e.0),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn place_truncation_is_malformed_not_panic() {
        let f = Request::Place {
            sessions: vec!["left".into(), "right".into()],
            groups: 2,
            capacity: 1,
            size_bytes: 6 << 20,
            intensities: vec![1.0, 2.0],
        }
        .encode();
        for cut in 0..f.len() - 4 {
            assert!(Request::decode(&f[4..4 + cut]).is_err(), "truncation at {cut}");
        }
        let f = Response::Placement {
            groups: vec![vec!["left".into()], vec!["right".into()]],
            total_miss_ratio: 0.5,
            throughput: 1.75,
            nodes_explored: 10,
            pruned: 3,
        }
        .encode();
        for cut in 0..f.len() - 4 {
            assert!(Response::decode(&f[4..4 + cut]).is_err(), "truncation at {cut}");
        }
        // Trailing bytes after a complete Place payload are rejected.
        let mut f = Request::Place {
            sessions: vec!["s".into()],
            groups: 1,
            capacity: 1,
            size_bytes: 1,
            intensities: vec![],
        }
        .encode();
        f.push(0);
        assert_eq!(Request::decode(&f[4..]), Err(ProtoError::TrailingBytes(1)));
    }

    #[test]
    fn corun_truncation_is_malformed_not_panic() {
        let sessions = vec!["left".to_string(), "right".to_string()];
        let sizes_bytes = vec![1u64 << 20, 6 << 20];
        let f = Request::CoRun {
            sessions: sessions.clone(),
            sizes_bytes: sizes_bytes.clone(),
            intensities: vec![3.0, 4.0],
        }
        .encode();
        // One cut length is special: chopping the whole trailing
        // intensities field leaves a *valid* PR 9 frame.
        let pr9 = Request::CoRun {
            sessions: sessions.clone(),
            sizes_bytes: sizes_bytes.clone(),
            intensities: vec![],
        }
        .encode();
        let pr9_body_len = pr9.len() - 4;
        for cut in 0..f.len() - 4 {
            let got = Request::decode(&f[4..4 + cut]);
            if cut == pr9_body_len {
                assert_eq!(
                    got.unwrap(),
                    Request::CoRun {
                        sessions: sessions.clone(),
                        sizes_bytes: sizes_bytes.clone(),
                        intensities: vec![],
                    },
                    "intensity-free prefix is the legacy frame"
                );
            } else {
                assert!(got.is_err(), "truncation at {cut}");
            }
        }
        let f = Response::CoRun {
            per_session: vec![("left".into(), vec![0.5]), ("right".into(), vec![0.75])],
            throughput: vec![1.5],
        }
        .encode();
        for cut in 0..f.len() - 4 {
            assert!(Response::decode(&f[4..4 + cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.1, 1.0 / 3.0, f64::MAX, -0.0, f64::NAN] {
            let f = Response::Mrc { ratios: vec![v] }.encode();
            let Response::Mrc { ratios } = Response::decode(&f[4..]).unwrap() else {
                panic!()
            };
            assert_eq!(ratios[0].to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_payload_is_malformed_not_panic() {
        let f = Request::QueryMrc {
            target: Target::Session("abcdef".into()),
            sizes_bytes: vec![1, 2, 3],
        }
        .encode();
        let body = &f[4..];
        for cut in 0..body.len() {
            let r = Request::decode(&body[..cut]);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut f = Request::Ping.encode();
        f.push(0xFF); // extra byte past the payload
        assert_eq!(
            Request::decode(&f[4..]),
            Err(ProtoError::TrailingBytes(1))
        );
    }

    #[test]
    fn bad_version_and_type() {
        assert_eq!(Request::decode(&[9, T_PING]), Err(ProtoError::BadVersion(9)));
        assert_eq!(
            Request::decode(&[PROTO_VERSION, 0x7F]),
            Err(ProtoError::BadType(0x7F))
        );
        assert_eq!(Request::decode(&[]), Err(ProtoError::TooShort));
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        // A QueryMrc claiming u32::MAX sizes in a tiny payload.
        let mut e = Enc(Vec::new());
        e.u8(PROTO_VERSION);
        e.u8(T_QUERY_MRC);
        e.u8(0);
        e.string("s");
        e.u32(u32::MAX);
        assert!(matches!(
            Request::decode(&e.0),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn read_frame_rejects_oversized_and_short() {
        let mut over = Vec::new();
        over.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut over.as_slice()),
            Err(FrameReadError::Proto(ProtoError::Oversized(_)))
        ));
        let mut short = Vec::new();
        short.extend_from_slice(&1u32.to_le_bytes());
        short.push(PROTO_VERSION);
        assert!(matches!(
            read_frame(&mut short.as_slice()),
            Err(FrameReadError::Proto(ProtoError::TooShort))
        ));
        // Clean EOF at a boundary.
        assert!(read_frame(&mut (&[] as &[u8])).unwrap().is_none());
        // EOF mid-header.
        assert!(matches!(
            read_frame(&mut (&[1u8, 0][..])),
            Err(FrameReadError::Io(_))
        ));
    }

    #[test]
    fn plan_wire_roundtrips_library_plan() {
        let mut plan = repf_core::PrefetchPlan::empty();
        plan.insert(
            Pc(5),
            repf_core::PrefetchDirective {
                distance_bytes: 512,
                nta: true,
                stride: 64,
            },
        );
        plan.insert(
            Pc(2),
            repf_core::PrefetchDirective {
                distance_bytes: -128,
                nta: false,
                stride: -16,
            },
        );
        let wire = PlanWire::from_plan(&plan, 2.0);
        assert_eq!(wire.directives[0].pc, 2, "sorted by pc");
        let back = wire.to_plan();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(Pc(5)).unwrap().distance_bytes, 512);
        assert!(back.get(Pc(5)).unwrap().nta);
    }
}
