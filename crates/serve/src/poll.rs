//! Thin, dependency-free wrappers over the Linux readiness APIs the
//! event-loop server needs: `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//! `eventfd`, and a `RLIMIT_NOFILE` raise for the many-connection bench.
//!
//! Everything is declared with `extern "C"` against the platform libc —
//! the workspace stays offline and std-only, no `libc`/`mio` crates.
//! The whole module is Linux-only; the server falls back to the
//! thread-per-connection path elsewhere.
//!
//! Safety model: every fd created here is owned by the wrapping struct
//! and closed on drop; raw-fd arguments are taken as `RawFd` from live
//! std types (`TcpListener`/`TcpStream`) whose lifetime the caller
//! manages — an fd must be [`Poller::del`]eted before its owner closes
//! it (or the epoll set simply forgets it on close, which is also fine
//! for level-triggered use).

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

// --- raw libc surface ---

#[allow(non_camel_case_types)]
type c_int = i32;

/// One readiness notification, laid out exactly as the kernel ABI wants
/// it (packed on x86-64, natural alignment elsewhere).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// Caller-chosen token, returned verbatim.
    pub data: u64,
}

/// One readiness notification, laid out exactly as the kernel ABI wants
/// it (packed on x86-64, natural alignment elsewhere).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// Caller-chosen token, returned verbatim.
    pub data: u64,
}

/// Readable (or a peer hangup pending read of the final bytes).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const EINTR: c_int = 4;
const EAGAIN: c_int = 11;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    fn __errno_location() -> *mut c_int;
}

fn errno() -> c_int {
    unsafe { *__errno_location() }
}

fn last_error() -> io::Error {
    io::Error::from_raw_os_error(errno())
}

// --- epoll ---

/// An owned `epoll` instance.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll set (`epoll_create1(EPOLL_CLOEXEC)`).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let arg = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        if unsafe { epoll_ctl(self.epfd, op, fd, arg) } < 0 {
            return Err(last_error());
        }
        Ok(())
    }

    /// Register `fd` with `interest`, reporting readiness as `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change a registered fd's interest set.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Remove `fd` from the set.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness, filling `events`. `timeout_ms < 0` blocks
    /// indefinitely, `0` polls. Returns the number of events written;
    /// `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            if errno() != EINTR {
                return Err(last_error());
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

// --- eventfd ---

/// An owned nonblocking `eventfd` used as a cross-thread wakeup: any
/// thread [`signal`](Self::signal)s it, the poll loop sees `EPOLLIN` and
/// [`drain`](Self::drain)s the counter. Both operations are async-safe
/// single syscalls, so `&EventFd` is shared freely across threads.
pub struct EventFd {
    fd: RawFd,
}

// SAFETY: signal/drain are single read/write syscalls on an eventfd,
// which the kernel serializes; no interior state beyond the fd.
unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

impl EventFd {
    /// A fresh counter at zero (`eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)`).
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(last_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Add 1 to the counter, waking any poller. Saturation (the counter
    /// at `u64::MAX - 1`) means a wake is already pending — success.
    pub fn signal(&self) {
        let one = 1u64.to_ne_bytes();
        loop {
            let n = unsafe { write(self.fd, one.as_ptr(), 8) };
            if n == 8 || (n < 0 && errno() == EAGAIN) {
                return;
            }
            if n < 0 && errno() != EINTR {
                return; // nothing useful to do with a broken eventfd
            }
        }
    }

    /// Reset the counter to zero so the next signal re-arms `EPOLLIN`.
    /// Returns `true` when at least one signal had been pending.
    pub fn drain(&self) -> bool {
        let mut buf = [0u8; 8];
        loop {
            let n = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
            if n == 8 {
                return true;
            }
            if n < 0 && errno() == EINTR {
                continue;
            }
            return false; // EAGAIN: already drained
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// --- rlimit ---

/// Best-effort raise of the open-file soft limit to at least `want`
/// (capped at the hard limit). Returns the resulting soft limit. The
/// idle-connection bench needs thousands of sockets; default soft
/// limits are often 1024.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    let new = RLimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        new.cur
    } else {
        lim.cur
    }
}

/// The current open-file soft limit, or 0 when it cannot be read. The
/// load generator's preflight compares this against its fd budget so a
/// too-small limit fails fast instead of half-opening the herd.
pub fn nofile_limit() -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    lim.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_signals_wake_the_poller_and_drain_rearms() {
        let poller = Poller::new().unwrap();
        let efd = EventFd::new().unwrap();
        poller.add(efd.fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];

        // Nothing pending: a zero-timeout wait sees no events.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        efd.signal(); // coalesces into one readable counter
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        // Copy out of the packed struct before asserting (no unaligned refs).
        let (tok, bits) = (events[0].data, events[0].events);
        assert_eq!(tok, 42);
        assert!(bits & EPOLLIN != 0);

        assert!(efd.drain(), "two signals were pending");
        assert!(!efd.drain(), "counter is reset");
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "level rearmed");
    }

    #[test]
    fn poller_reports_socket_readability_by_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let tok = events[0].data;
        assert_eq!(tok, 7, "listener token");

        let (server_side, _) = listener.accept().unwrap();
        poller.add(server_side.as_raw_fd(), EPOLLIN, 9).unwrap();
        client.write_all(b"x").unwrap();
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let tok = events[0].data;
        assert_eq!(tok, 9, "connection token");

        // Interest can be modified and removed.
        poller
            .modify(server_side.as_raw_fd(), EPOLLIN | EPOLLOUT, 9)
            .unwrap();
        let n = poller.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        poller.del(server_side.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn nofile_limit_raise_is_monotone() {
        let before = raise_nofile_limit(0);
        let after = raise_nofile_limit(before.max(256));
        assert!(after >= before);
    }
}
