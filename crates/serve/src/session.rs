//! The per-session profile store: named, client-submitted sampling
//! profiles held under a configurable byte budget — the server's only
//! unboundedly-client-driven memory, so it is the one place that must
//! degrade instead of grow.
//!
//! Two stores live here:
//!
//! * [`SessionStore`] — one independently-locked *shard*: an evicting
//!   store with its own byte budget, clock, name→index map (O(1)
//!   lookup) and per-session fitted-model cache keyed on a profile
//!   version counter.
//! * [`ShardedSessionStore`] — N shards selected by session-name hash,
//!   each with a proportional slice of the byte budget, so submits and
//!   queries to different sessions never contend on one mutex.
//!
//! Eviction runs one of two [`StorePolicy`]s:
//!
//! * [`StorePolicy::Lru`] (default) — plain least-recently-used over
//!   the whole shard budget.
//! * [`StorePolicy::TinyLfu`] — W-TinyLFU admission + segmented
//!   eviction: new sessions enter a small *window* segment (~1% of the
//!   shard budget); a window victim is admitted into the
//!   probation/protected *main* segment only if its frequency — a 4-bit
//!   count-min sketch behind a doorkeeper bloom filter, see
//!   [`crate::tinylfu`] — beats the main segment's own eviction
//!   candidate, so a burst of one-shot sessions cannot flush the hot
//!   working set. Reads record frequency through a lock-free striped
//!   buffer drained in batches under the shard lock the lookup already
//!   holds, never an extra acquisition.
//!
//! Under either policy nothing is evicted or refused while the store
//! fits its budget — replay's oracle never evicts, so per-policy replay
//! digests stay node-count- and io-mode-invariant.
//!
//! Model caching: every submit bumps the session's version; a query
//! either reuses the cached [`Arc<StatStackModel>`] (version match — no
//! fit at all) or folds the batches submitted since the last fit into the
//! previous model via the incremental [`StatStackBuilder`] merge path and
//! publishes the result. Either way the caller gets an `Arc` it can
//! evaluate *after* releasing the shard lock.
//!
//! Budget accounting covers the client-submitted sample data (profile
//! vectors). The derived fitting state is bounded by a small constant
//! factor of the same data — pending sorted runs are cleared on every
//! fit, and a cached model holds one `u64` per reuse sample (plus per-PC
//! copies) — and is dropped with the entry on eviction, so the aggregate
//! stays proportional to the configured budget.

use crate::proto::SampleBatch;
use crate::tinylfu::{AccessBuffer, TinyLfu};
use repf_sampling::{DanglingSample, Profile, ReuseSample, StrideSample};
use repf_statstack::{StatStackBuilder, StatStackModel};
use repf_trace::hash::FxHashMap;
use std::collections::VecDeque;
use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which admission/eviction policy a session store runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorePolicy {
    /// Plain LRU over the whole budget (the original behaviour, and
    /// still the default).
    #[default]
    Lru,
    /// W-TinyLFU: frequency-sketch admission with window +
    /// probation/protected segmented eviction.
    TinyLfu,
}

impl StorePolicy {
    pub const ALL: [StorePolicy; 2] = [StorePolicy::Lru, StorePolicy::TinyLfu];

    pub fn as_str(self) -> &'static str {
        match self {
            StorePolicy::Lru => "lru",
            StorePolicy::TinyLfu => "tinylfu",
        }
    }
}

impl std::str::FromStr for StorePolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "lru" => Ok(StorePolicy::Lru),
            "tinylfu" => Ok(StorePolicy::TinyLfu),
            other => Err(format!("unknown store policy '{other}' (expected lru|tinylfu)")),
        }
    }
}

impl std::fmt::Display for StorePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The hash every consumer of a session name agrees on: shard
/// selection, the frequency sketch, and the striped access buffers all
/// key off this one FxHash value.
pub(crate) fn name_hash(name: &str) -> u64 {
    let hasher: BuildHasherDefault<repf_trace::hash::FxHasher> = Default::default();
    hasher.hash_one(name.as_bytes())
}

/// Fixed per-session bookkeeping charge (name, map entry, vec headers).
const SESSION_OVERHEAD_BYTES: usize = 256;

/// Approximate heap footprint of a profile's sample vectors.
fn profile_bytes(p: &Profile) -> usize {
    p.reuse.len() * std::mem::size_of::<ReuseSample>()
        + p.dangling.len() * std::mem::size_of::<DanglingSample>()
        + p.strides.len() * std::mem::size_of::<StrideSample>()
}

/// Which W-TinyLFU segment an entry lives in (ignored under LRU).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    /// New arrivals; ~1% of the shard budget.
    Window,
    /// Admitted from the window; first to be evicted from main.
    Probation,
    /// Probation entries that were touched again; evicted last.
    Protected,
}

struct SessionEntry {
    name: String,
    /// `name_hash(name)` — the sketch/doorkeeper key.
    hash: u64,
    /// W-TinyLFU segment membership (always `Window` under LRU).
    segment: Segment,
    profile: Profile,
    /// Batches submitted since the last fit, as mergeable sorted runs.
    pending: StatStackBuilder,
    /// Bumped on every submit; a cached fit is valid iff its version
    /// matches.
    version: u64,
    /// The last published fit and the version it covers.
    cached: Option<(u64, Arc<StatStackModel>)>,
    bytes: usize,
    last_used: u64,
}

/// The per-shard W-TinyLFU state: the admission filter plus segment
/// byte accounting and the admission counters surfaced through `Stats`.
struct LfuState {
    filter: TinyLfu,
    /// Byte budget of the window segment (~1% of the shard budget,
    /// clamped to [1 KiB, budget]).
    window_budget: usize,
    /// Byte budget of the protected segment (80% of main).
    protected_budget: usize,
    window_bytes: usize,
    probation_bytes: usize,
    protected_bytes: usize,
    admitted: u64,
    rejected: u64,
}

impl LfuState {
    fn new(budget_bytes: usize) -> Self {
        let window_budget = (budget_bytes / 100).clamp(1024.min(budget_bytes), budget_bytes);
        let main_budget = budget_bytes - window_budget;
        LfuState {
            filter: TinyLfu::for_budget(budget_bytes),
            window_budget,
            protected_budget: main_budget / 5 * 4,
            window_bytes: 0,
            probation_bytes: 0,
            protected_bytes: 0,
            admitted: 0,
            rejected: 0,
        }
    }

    fn seg_bytes_mut(&mut self, seg: Segment) -> &mut usize {
        match seg {
            Segment::Window => &mut self.window_bytes,
            Segment::Probation => &mut self.probation_bytes,
            Segment::Protected => &mut self.protected_bytes,
        }
    }
}

/// Extra frequency credit for an imported session that carries a
/// cached model: the exporter considered it hot enough to fit, so the
/// importer's admission filter must not treat it as a one-hit wonder
/// (that would silently defeat fleet-wide fit-at-most-once).
const MODEL_IMPORT_FREQ_BOOST: u32 = 4;

/// A portable snapshot of one session — everything a peer needs to take
/// ownership without refitting: the full raw profile as a wire batch,
/// the version counter (so fleet-wide `(session, version)` model keys
/// stay continuous across moves), and the cached fit when it covers the
/// snapshotted version.
pub struct SessionExport {
    /// The complete profile as one submit-shaped batch.
    pub batch: SampleBatch,
    /// The session's version counter at snapshot time.
    pub version: u64,
    /// The cached model, only when it is valid for `version` — a stale
    /// cache is not shipped (the importer would refit at the *new*
    /// version anyway, which no node has fit yet).
    pub model: Option<Arc<StatStackModel>>,
}

/// Outcome of a successful submit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Store-wide bytes after the submit (≤ the budget). For a sharded
    /// store this is the aggregate across all shards.
    pub store_bytes: u64,
    /// Sessions evicted to fit the budget.
    pub evicted: u32,
}

/// Why a submit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitRejected {
    /// The batch's `line_bytes` disagrees with earlier batches of the
    /// same session — mixing them would corrupt the model.
    InconsistentLineBytes,
}

/// An LRU-evicting session store with a hard byte budget — one shard of
/// a [`ShardedSessionStore`], usable standalone as the 1-shard store.
///
/// Eviction happens on submit: after a batch is appended, least-recently
/// *used* sessions (submits and queries both refresh recency) are dropped
/// until the store fits the budget again. The session just written is
/// evicted only if it alone exceeds the whole budget, so the invariant
/// `bytes() ≤ budget` holds unconditionally after every operation.
pub struct SessionStore {
    budget_bytes: usize,
    policy: StorePolicy,
    /// W-TinyLFU state; `Some` iff `policy == TinyLfu`.
    lfu: Option<Box<LfuState>>,
    entries: Vec<SessionEntry>,
    /// Name → index into `entries`, maintained across `swap_remove`.
    index: FxHashMap<String, usize>,
    /// Migrated-away sessions: name → (destination address, insertion
    /// sequence), left behind by [`SessionStore::remove_migrated`] so
    /// the old owner can forward in-flight requests during the handoff
    /// window.
    tombstones: FxHashMap<String, (String, u64)>,
    /// Insertion order of live tombstones, for FIFO cap-eviction.
    /// Entries whose sequence no longer matches the map are stale
    /// (cleared or re-inserted) and skipped lazily.
    tombstone_fifo: VecDeque<(String, u64)>,
    tombstone_seq: u64,
    clock: u64,
    bytes: usize,
    evictions: u64,
    model_hits: u64,
    model_misses: u64,
}

/// Tombstones beyond this count evict the *oldest* ones first (FIFO) —
/// they are a forwarding hint for the handoff window, not durable
/// state, and the most recent migrations are the ones still being
/// chased.
const MAX_TOMBSTONES: usize = 4096;

impl SessionStore {
    /// An empty LRU store with the given byte budget (clamped to ≥ 1 so
    /// a zero budget means "keep nothing", not "unbounded").
    pub fn new(budget_bytes: usize) -> Self {
        Self::with_policy(budget_bytes, StorePolicy::Lru)
    }

    /// An empty store running `policy`.
    pub fn with_policy(budget_bytes: usize, policy: StorePolicy) -> Self {
        let budget_bytes = budget_bytes.max(1);
        SessionStore {
            budget_bytes,
            policy,
            lfu: match policy {
                StorePolicy::Lru => None,
                StorePolicy::TinyLfu => Some(Box::new(LfuState::new(budget_bytes))),
            },
            entries: Vec::new(),
            index: FxHashMap::default(),
            tombstones: FxHashMap::default(),
            tombstone_fifo: VecDeque::new(),
            tombstone_seq: 0,
            clock: 0,
            bytes: 0,
            evictions: 0,
            model_hits: 0,
            model_misses: 0,
        }
    }

    /// The policy this store runs.
    pub fn policy(&self) -> StorePolicy {
        self.policy
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    fn remove_at(&mut self, ix: usize) -> SessionEntry {
        let e = self.entries.swap_remove(ix);
        self.index.remove(&e.name);
        // `swap_remove` moved the former last entry into `ix`.
        if let Some(moved) = self.entries.get(ix) {
            self.index.insert(moved.name.clone(), ix);
        }
        e
    }

    /// Remove the entry at `ix`, updating the byte gauge and segment
    /// accounting (no eviction counter — migration removals use this
    /// too).
    fn detach_at(&mut self, ix: usize) -> SessionEntry {
        let seg = self.entries[ix].segment;
        let e = self.remove_at(ix);
        self.bytes -= e.bytes;
        if let Some(lfu) = &mut self.lfu {
            *lfu.seg_bytes_mut(seg) -= e.bytes;
        }
        e
    }

    fn evict_at(&mut self, ix: usize) {
        self.detach_at(ix);
        self.evictions += 1;
    }

    /// Record one access of `hash` in the admission filter (no-op under
    /// LRU). The sharded store feeds this from the striped read buffers
    /// and from submits.
    pub fn record_access(&mut self, hash: u64) {
        if let Some(lfu) = &mut self.lfu {
            lfu.filter.record(hash);
        }
    }

    /// Refresh `ix`'s recency; under W-TinyLFU a touched probation
    /// entry is promoted to protected (demoting the protected LRU back
    /// to probation if the protected segment overflows).
    fn touch(&mut self, ix: usize) {
        let now = self.tick();
        self.entries[ix].last_used = now;
        self.promote_if_probation(ix);
    }

    /// Segmented-LRU promotion: an accessed (queried or re-submitted)
    /// probation entry moves to protected; protected overflow demotes
    /// its LRU back to probation.
    fn promote_if_probation(&mut self, ix: usize) {
        if self.lfu.is_none() || self.entries[ix].segment != Segment::Probation {
            return;
        }
        self.move_segment(ix, Segment::Protected);
        loop {
            let lfu = self.lfu.as_ref().unwrap();
            if lfu.protected_bytes <= lfu.protected_budget {
                break;
            }
            let Some(demote) = self.lru_victim_in(Segment::Protected) else {
                break;
            };
            self.move_segment(demote, Segment::Probation);
            if demote == ix {
                break; // the sole protected entry is the one just promoted
            }
        }
    }

    fn move_segment(&mut self, ix: usize, to: Segment) {
        let from = self.entries[ix].segment;
        if from == to {
            return;
        }
        let bytes = self.entries[ix].bytes;
        self.entries[ix].segment = to;
        if let Some(lfu) = &mut self.lfu {
            *lfu.seg_bytes_mut(from) -= bytes;
            *lfu.seg_bytes_mut(to) += bytes;
        }
    }

    fn lru_victim_in(&self, seg: Segment) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.segment == seg)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
    }

    /// The main segment's eviction candidate: probation LRU first,
    /// protected LRU only when probation is empty.
    fn main_victim(&self) -> Option<usize> {
        self.lru_victim_in(Segment::Probation)
            .or_else(|| self.lru_victim_in(Segment::Protected))
    }

    /// W-TinyLFU rebalance after any growth: first migrate window
    /// overflow into main through the admission filter, then — if the
    /// store is still over budget (an entry already in main grew) —
    /// evict main victims outright. Nothing happens while the store
    /// fits its budget *and* the window fits its slice.
    fn rebalance_tinylfu(&mut self, evicted: &mut u32) {
        loop {
            let lfu = self.lfu.as_ref().unwrap();
            if lfu.window_bytes <= lfu.window_budget {
                break;
            }
            let Some(w) = self.lru_victim_in(Segment::Window) else {
                break;
            };
            self.admit_window_victim(w, evicted);
        }
        while self.bytes > self.budget_bytes && !self.entries.is_empty() {
            let v = self
                .main_victim()
                .or_else(|| self.lru_victim_in(Segment::Window))
                .unwrap();
            self.evict_at(v);
            *evicted += 1;
        }
    }

    /// Try to move the window victim at `w` into probation: free main
    /// space by evicting main victims the window victim's sketch
    /// frequency beats; the first main victim it cannot beat wins, and
    /// the window victim is evicted instead (admission rejected).
    fn admit_window_victim(&mut self, mut w: usize, evicted: &mut u32) {
        let lfu = self.lfu.as_ref().unwrap();
        let main_budget = self.budget_bytes - lfu.window_budget;
        loop {
            let lfu = self.lfu.as_ref().unwrap();
            let main_bytes = lfu.probation_bytes + lfu.protected_bytes;
            if main_bytes + self.entries[w].bytes <= main_budget {
                self.move_segment(w, Segment::Probation);
                self.lfu.as_mut().unwrap().admitted += 1;
                return;
            }
            let Some(m) = self.main_victim() else {
                // Main is empty and the victim alone exceeds the main
                // budget: nothing to compare against, drop it.
                self.evict_at(w);
                *evicted += 1;
                self.lfu.as_mut().unwrap().rejected += 1;
                return;
            };
            let wf = lfu.filter.frequency(self.entries[w].hash);
            let mf = lfu.filter.frequency(self.entries[m].hash);
            if wf > mf {
                // `swap_remove` may relocate the last entry into `m`.
                let last = self.entries.len() - 1;
                self.evict_at(m);
                *evicted += 1;
                if w == last {
                    w = m;
                }
            } else {
                self.evict_at(w);
                *evicted += 1;
                self.lfu.as_mut().unwrap().rejected += 1;
                return;
            }
        }
    }

    /// Append a batch to `name`'s profile, creating the session on
    /// first use, then evict sessions per the store's policy until the
    /// store fits its budget (LRU: least-recently-used across the whole
    /// store; W-TinyLFU: window overflow through the admission filter,
    /// then main victims).
    pub fn submit(
        &mut self,
        name: &str,
        batch: SampleBatch,
    ) -> Result<SubmitOutcome, SubmitRejected> {
        let now = self.tick();
        let hash = name_hash(name);
        let ix = match self.index_of(name) {
            Some(ix) => ix,
            None => {
                // A fresh local session supersedes any forwarding hint.
                self.tombstones.remove(name);
                self.entries.push(SessionEntry {
                    name: name.to_string(),
                    hash,
                    segment: Segment::Window,
                    profile: Profile {
                        sample_period: batch.sample_period,
                        line_bytes: batch.line_bytes,
                        ..Profile::default()
                    },
                    pending: StatStackBuilder::new(batch.line_bytes),
                    version: 0,
                    cached: None,
                    bytes: SESSION_OVERHEAD_BYTES + name.len(),
                    last_used: now,
                });
                self.bytes += SESSION_OVERHEAD_BYTES + name.len();
                if let Some(lfu) = &mut self.lfu {
                    lfu.window_bytes += SESSION_OVERHEAD_BYTES + name.len();
                }
                let ix = self.entries.len() - 1;
                self.index.insert(name.to_string(), ix);
                ix
            }
        };
        let entry = &mut self.entries[ix];
        if entry.profile.line_bytes != batch.line_bytes {
            return Err(SubmitRejected::InconsistentLineBytes);
        }
        let before = profile_bytes(&entry.profile);
        entry.pending.push_batch(&batch.reuse, &batch.dangling);
        entry.version += 1;
        entry.profile.total_refs += batch.total_refs;
        entry.profile.sample_period = batch.sample_period;
        entry.profile.reuse.extend(batch.reuse);
        entry.profile.dangling.extend(batch.dangling);
        entry.profile.strides.extend(batch.strides);
        let grown = profile_bytes(&entry.profile) - before;
        entry.bytes += grown;
        entry.last_used = now;
        let seg = entry.segment;
        self.bytes += grown;
        if let Some(lfu) = &mut self.lfu {
            *lfu.seg_bytes_mut(seg) += grown;
        }
        self.record_access(hash);
        // A re-submitted session is being reused: promote it like any
        // other access.
        self.promote_if_probation(ix);

        let mut evicted = 0u32;
        match self.policy {
            StorePolicy::Lru => {
                while self.bytes > self.budget_bytes && !self.entries.is_empty() {
                    let victim = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .unwrap();
                    self.evict_at(victim);
                    evicted += 1;
                }
            }
            StorePolicy::TinyLfu => self.rebalance_tinylfu(&mut evicted),
        }
        Ok(SubmitOutcome {
            store_bytes: self.bytes as u64,
            evicted,
        })
    }

    /// The profile of `name`, refreshing its recency. `None` when the
    /// session does not exist (never created, or evicted).
    pub fn get(&mut self, name: &str) -> Option<&Profile> {
        let ix = self.index_of(name)?;
        self.touch(ix);
        // `touch` may relocate entries across segments but never
        // reorders `entries` itself; re-resolve anyway for clarity.
        let ix = self.index_of(name)?;
        Some(&self.entries[ix].profile)
    }

    /// A fitted model of `name`'s profile, refreshing recency. Returns
    /// the model and whether it was a cache hit. On a miss the batches
    /// submitted since the last fit are folded into the previous model
    /// through the incremental merge path (first fit: from the pending
    /// runs alone) and the result is published for later queries.
    pub fn model(&mut self, name: &str) -> Option<(Arc<StatStackModel>, bool)> {
        let ix = self.index_of(name)?;
        self.touch(ix);
        let entry = &mut self.entries[ix];
        if let Some((v, m)) = &entry.cached {
            if *v == entry.version {
                self.model_hits += 1;
                return Some((Arc::clone(m), true));
            }
        }
        let model = match &entry.cached {
            Some((_, base)) => base.extend(&entry.pending),
            None => entry.pending.fit(),
        };
        entry.pending.clear();
        let model = Arc::new(model);
        entry.cached = Some((entry.version, Arc::clone(&model)));
        self.model_misses += 1;
        Some((model, false))
    }

    /// Run `f` on `name`'s profile *and* its (cached or freshly fitted)
    /// model, refreshing recency. The second return is the cache-hit
    /// flag. Used by plan queries, which need both.
    pub fn with_profile_and_model<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&Profile, &StatStackModel) -> R,
    ) -> Option<(R, bool)> {
        let (model, hit) = self.model(name)?;
        let ix = self.index_of(name)?;
        Some((f(&self.entries[ix].profile, &model), hit))
    }

    /// Current bytes held (always ≤ the budget).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no session is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total sessions evicted over the store's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Model-cache hits served by this store.
    pub fn model_hits(&self) -> u64 {
        self.model_hits
    }

    /// Model-cache misses (fits performed) by this store.
    pub fn model_misses(&self) -> u64 {
        self.model_misses
    }

    /// Window victims admitted into the main segment (0 under LRU).
    pub fn admission_accepted(&self) -> u64 {
        self.lfu.as_ref().map_or(0, |l| l.admitted)
    }

    /// Window victims rejected by the admission filter (0 under LRU).
    pub fn admission_rejected(&self) -> u64 {
        self.lfu.as_ref().map_or(0, |l| l.rejected)
    }

    /// One-hit wonders absorbed by the doorkeeper (0 under LRU).
    pub fn doorkeeper_hits(&self) -> u64 {
        self.lfu.as_ref().map_or(0, |l| l.filter.doorkeeper_hits())
    }

    /// Frequency-sketch halving resets performed (0 under LRU).
    pub fn sketch_resets(&self) -> u64 {
        self.lfu.as_ref().map_or(0, |l| l.filter.sketch_resets())
    }

    /// Bytes held per segment as (window, probation, protected).
    /// Under LRU everything counts as window.
    pub fn segment_bytes(&self) -> (u64, u64, u64) {
        match &self.lfu {
            Some(l) => (
                l.window_bytes as u64,
                l.probation_bytes as u64,
                l.protected_bytes as u64,
            ),
            None => (self.bytes as u64, 0, 0),
        }
    }

    /// True when `name` is live, *without* refreshing recency — routing
    /// probes must not distort the LRU order.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// `name`'s version counter (no recency refresh).
    pub fn version_of(&self, name: &str) -> Option<u64> {
        self.index_of(name).map(|ix| self.entries[ix].version)
    }

    /// Names of every live session, in no particular order — the
    /// migration sweep's work list.
    pub fn session_names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    /// Non-destructive snapshot of `name` for migration: the full
    /// profile as one batch, the version counter, and the cached model
    /// when it covers that exact version. No recency refresh — the
    /// session is about to leave.
    pub fn export(&self, name: &str) -> Option<SessionExport> {
        let e = &self.entries[self.index_of(name)?];
        let model = match &e.cached {
            Some((v, m)) if *v == e.version => Some(Arc::clone(m)),
            _ => None,
        };
        Some(SessionExport {
            batch: SampleBatch::from_profile(&e.profile),
            version: e.version,
            model,
        })
    }

    /// Complete a migration: drop `name` *iff* its version still equals
    /// `version` (no submit raced the snapshot) and leave a tombstone
    /// pointing at `dest`. Returns `false` when the version moved — the
    /// caller must re-export and try again.
    pub fn remove_migrated(&mut self, name: &str, version: u64, dest: &str) -> bool {
        let Some(ix) = self.index_of(name) else {
            return true; // already gone (evicted) — nothing to move
        };
        if self.entries[ix].version != version {
            return false;
        }
        self.detach_at(ix);
        self.tombstone_seq += 1;
        let seq = self.tombstone_seq;
        self.tombstones.insert(name.to_string(), (dest.to_string(), seq));
        self.tombstone_fifo.push_back((name.to_string(), seq));
        // FIFO cap: the oldest live tombstone goes first. Queue entries
        // whose sequence no longer matches the map (cleared by a fresh
        // submit/import, or superseded by a re-migration) are stale —
        // skip them, and compact them eagerly so the queue stays
        // proportional to the live set.
        while self.tombstones.len() > MAX_TOMBSTONES {
            match self.tombstone_fifo.pop_front() {
                Some((k, s)) => {
                    if self.tombstones.get(&k).is_some_and(|(_, live)| *live == s) {
                        self.tombstones.remove(&k);
                    }
                }
                None => break,
            }
        }
        while let Some((k, s)) = self.tombstone_fifo.front() {
            if self.tombstones.get(k).is_some_and(|(_, live)| live == s) {
                break;
            }
            self.tombstone_fifo.pop_front();
        }
        true
    }

    /// Install a migrated session wholesale, replacing any local entry
    /// and clearing any tombstone. The version counter continues from
    /// the exporter's value; when `model` is present it is published as
    /// the cached fit for that version, so the importer never refits
    /// (otherwise the full batch is staged as pending for the next
    /// query's fit). LRU eviction applies as for submits.
    pub fn import(
        &mut self,
        name: &str,
        version: u64,
        batch: SampleBatch,
        model: Option<Arc<StatStackModel>>,
    ) -> Result<SubmitOutcome, SubmitRejected> {
        if let Some(ix) = self.index_of(name) {
            self.detach_at(ix);
        }
        self.tombstones.remove(name);
        if self.policy == StorePolicy::TinyLfu && model.is_some() {
            // A session arriving with a cached fit was hot on the
            // exporter; pre-credit the admission filter so migration
            // under pressure cannot discard the model fleet-wide
            // fit-at-most-once just paid for.
            let h = name_hash(name);
            for _ in 0..MODEL_IMPORT_FREQ_BOOST {
                self.record_access(h);
            }
        }
        let out = self.submit(name, batch)?;
        if let Some(ix) = self.index_of(name) {
            // submit() set version 1 and staged the batch as pending;
            // rewrite both to reflect the exporter's state.
            let e = &mut self.entries[ix];
            e.version = version;
            if let Some(m) = model {
                e.pending.clear();
                e.cached = Some((version, m));
            }
        }
        Ok(out)
    }

    /// Where `name` migrated to, if a tombstone is held for it.
    pub fn tombstone_of(&self, name: &str) -> Option<&str> {
        self.tombstones.get(name).map(|(dest, _)| dest.as_str())
    }

    /// Live tombstone count.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// The cached fit for `name` *iff* it covers exactly `version`.
    /// No recency refresh and never fits — peer model pulls must stay
    /// cheap on the answering side.
    pub fn cached_model_at(&self, name: &str, version: u64) -> Option<Arc<StatStackModel>> {
        let e = &self.entries[self.index_of(name)?];
        match &e.cached {
            Some((v, m)) if *v == version => Some(Arc::clone(m)),
            _ => None,
        }
    }

    /// Publish a model fitted elsewhere as `name`'s cached fit,
    /// provided the session still sits at exactly `version` (a racing
    /// submit voids the pull). The model covers the whole profile at
    /// that version, so staged pending batches are superseded by it.
    /// Returns whether it was installed.
    pub fn install_model(
        &mut self,
        name: &str,
        version: u64,
        model: Arc<StatStackModel>,
    ) -> bool {
        let Some(ix) = self.index_of(name) else {
            return false;
        };
        let e = &mut self.entries[ix];
        if e.version != version {
            return false;
        }
        e.pending.clear();
        e.cached = Some((version, model));
        true
    }
}

/// A point-in-time summary of one shard, surfaced through the `Stats`
/// request as `sessions.shard.N.*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Bytes held (≤ `budget_bytes`).
    pub bytes: u64,
    /// This shard's slice of the byte budget.
    pub budget_bytes: u64,
    /// Live sessions.
    pub sessions: u64,
    /// Lifetime evictions.
    pub evictions: u64,
    /// Model-cache hits.
    pub model_hits: u64,
    /// Model-cache misses (fits performed).
    pub model_misses: u64,
    /// Window victims admitted into main (W-TinyLFU; 0 under LRU).
    pub admission_accepted: u64,
    /// Window victims rejected by the admission filter (0 under LRU).
    pub admission_rejected: u64,
    /// One-hit wonders absorbed by the doorkeeper (0 under LRU).
    pub doorkeeper_hits: u64,
    /// Frequency-sketch halving resets (0 under LRU).
    pub sketch_resets: u64,
    /// Bytes in the window segment (all bytes under LRU).
    pub window_bytes: u64,
    /// Bytes in the probation segment.
    pub probation_bytes: u64,
    /// Bytes in the protected segment.
    pub protected_bytes: u64,
    /// Batched drains of the striped read-access buffer, each performed
    /// under a lock the drainer already held — the counter that proves
    /// reads never took an extra lock to record frequency.
    pub access_drains: u64,
    /// Pending accesses lost to ring overwrites (lossy by design).
    pub access_dropped: u64,
}

struct Shard {
    store: Mutex<SessionStore>,
    /// Lock-free mirror of the store's byte gauge, refreshed after every
    /// submit, so aggregate reporting never takes other shards' locks.
    bytes: AtomicU64,
    /// Pending read accesses awaiting a batched drain (W-TinyLFU only).
    accesses: AccessBuffer,
    /// Batched drains performed (each under an already-held lock).
    drains: AtomicU64,
    /// Accesses lost to ring overwrites.
    dropped: AtomicU64,
}

impl Shard {
    /// Drain the pending read accesses into the store. The caller holds
    /// the shard lock already — this is the *batched* recording path,
    /// never an extra acquisition.
    fn drain_accesses(&self, store: &mut SessionStore) {
        let n = self.accesses.drain(|h| store.record_access(h));
        if n > 0 {
            self.drains.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// N independently-locked [`SessionStore`] shards selected by session-name
/// hash. Each shard owns `budget / N` bytes with its own LRU clock, so the
/// aggregate never exceeds the configured budget while submits and queries
/// to different sessions proceed without contending on a single mutex.
pub struct ShardedSessionStore {
    shards: Vec<Shard>,
    policy: StorePolicy,
}

impl ShardedSessionStore {
    /// An LRU store of `shards` shards splitting `budget_bytes` evenly
    /// (`shards` is clamped to ≥ 1).
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        Self::with_policy(budget_bytes, shards, StorePolicy::Lru)
    }

    /// A store of `shards` shards running `policy`.
    pub fn with_policy(budget_bytes: usize, shards: usize, policy: StorePolicy) -> Self {
        let n = shards.max(1);
        let per_shard = budget_bytes / n;
        ShardedSessionStore {
            shards: (0..n)
                .map(|_| Shard {
                    store: Mutex::new(SessionStore::with_policy(per_shard, policy)),
                    bytes: AtomicU64::new(0),
                    accesses: AccessBuffer::new(),
                    drains: AtomicU64::new(0),
                    dropped: AtomicU64::new(0),
                })
                .collect(),
            policy,
        }
    }

    /// The policy every shard runs.
    pub fn policy(&self) -> StorePolicy {
        self.policy
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `name` maps to.
    pub fn shard_of(&self, name: &str) -> usize {
        (name_hash(name) % self.shards.len() as u64) as usize
    }

    /// Record a read access for the admission filter: a lock-free push
    /// into the shard's striped buffer. Returns the shard, and whether
    /// the caller — who is about to take the shard lock for its own
    /// lookup anyway — should drain the batch. No-op under LRU.
    fn note_read(&self, name: &str) -> (&Shard, bool) {
        let hash = name_hash(name);
        let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
        if self.policy != StorePolicy::TinyLfu {
            return (shard, false);
        }
        let out = shard.accesses.push(hash);
        if out.dropped {
            shard.dropped.fetch_add(1, Ordering::Relaxed);
        }
        (shard, out.should_drain)
    }

    /// Submit a batch to `name`'s session (see [`SessionStore::submit`]).
    /// `store_bytes` in the outcome is the aggregate across shards.
    pub fn submit(
        &self,
        name: &str,
        batch: SampleBatch,
    ) -> Result<SubmitOutcome, SubmitRejected> {
        let shard = &self.shards[self.shard_of(name)];
        let out = {
            let mut store = shard.store.lock().unwrap();
            // Writers drain the pending read accesses first so the
            // admission filter decides on up-to-date frequencies.
            shard.drain_accesses(&mut store);
            let out = store.submit(name, batch)?;
            shard.bytes.store(store.bytes() as u64, Ordering::Relaxed);
            out
        };
        Ok(SubmitOutcome {
            store_bytes: self.bytes(),
            evicted: out.evicted,
        })
    }

    /// Run `f` on `name`'s profile under its shard lock (recency
    /// refreshed). `None` when the session does not exist.
    pub fn with_profile<R>(&self, name: &str, f: impl FnOnce(&Profile) -> R) -> Option<R> {
        let (shard, drain) = self.note_read(name);
        let mut store = shard.store.lock().unwrap();
        if drain {
            shard.drain_accesses(&mut store);
        }
        store.get(name).map(f)
    }

    /// The cached-or-refitted model of `name` plus the cache-hit flag.
    /// The fit (if any) runs under the shard lock — concurrent queries of
    /// one hot session do one fit, not N — and the returned `Arc` is
    /// evaluated by the caller after the lock is released.
    pub fn model(&self, name: &str) -> Option<(Arc<StatStackModel>, bool)> {
        let (shard, drain) = self.note_read(name);
        let mut store = shard.store.lock().unwrap();
        if drain {
            shard.drain_accesses(&mut store);
        }
        store.model(name)
    }

    /// Run `f` on `name`'s profile and model under the shard lock (see
    /// [`SessionStore::with_profile_and_model`]).
    pub fn with_profile_and_model<R>(
        &self,
        name: &str,
        f: impl FnOnce(&Profile, &StatStackModel) -> R,
    ) -> Option<(R, bool)> {
        let (shard, drain) = self.note_read(name);
        let mut store = shard.store.lock().unwrap();
        if drain {
            shard.drain_accesses(&mut store);
        }
        store.with_profile_and_model(name, f)
    }

    /// Aggregate bytes across shards (lock-free; each shard's gauge is
    /// refreshed under its own lock on submit).
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes.load(Ordering::Relaxed)).sum()
    }

    /// Aggregate budget (sum of per-shard slices, ≤ the configured
    /// budget).
    pub fn budget_bytes(&self) -> usize {
        self.shards.len() * self.shards[0].store.lock().unwrap().budget_bytes()
    }

    /// Live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.store.lock().unwrap().len()).sum()
    }

    /// `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime evictions across all shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.store.lock().unwrap().evictions()).sum()
    }

    /// True when `name` is live (no recency refresh).
    pub fn contains(&self, name: &str) -> bool {
        self.shards[self.shard_of(name)].store.lock().unwrap().contains(name)
    }

    /// `name`'s version counter (no recency refresh).
    pub fn version_of(&self, name: &str) -> Option<u64> {
        self.shards[self.shard_of(name)].store.lock().unwrap().version_of(name)
    }

    /// Names of every live session across all shards.
    pub fn session_names(&self) -> Vec<String> {
        self.shards
            .iter()
            .flat_map(|s| s.store.lock().unwrap().session_names())
            .collect()
    }

    /// Snapshot `name` for migration (see [`SessionStore::export`]).
    pub fn export(&self, name: &str) -> Option<SessionExport> {
        self.shards[self.shard_of(name)].store.lock().unwrap().export(name)
    }

    /// Drop `name` iff still at `version`, leaving a tombstone → `dest`
    /// (see [`SessionStore::remove_migrated`]).
    pub fn remove_migrated(&self, name: &str, version: u64, dest: &str) -> bool {
        let shard = &self.shards[self.shard_of(name)];
        let mut store = shard.store.lock().unwrap();
        let ok = store.remove_migrated(name, version, dest);
        shard.bytes.store(store.bytes() as u64, Ordering::Relaxed);
        ok
    }

    /// Install a migrated session (see [`SessionStore::import`]).
    pub fn import(
        &self,
        name: &str,
        version: u64,
        batch: SampleBatch,
        model: Option<Arc<StatStackModel>>,
    ) -> Result<SubmitOutcome, SubmitRejected> {
        let shard = &self.shards[self.shard_of(name)];
        let out = {
            let mut store = shard.store.lock().unwrap();
            shard.drain_accesses(&mut store);
            let out = store.import(name, version, batch, model)?;
            shard.bytes.store(store.bytes() as u64, Ordering::Relaxed);
            out
        };
        Ok(SubmitOutcome {
            store_bytes: self.bytes(),
            evicted: out.evicted,
        })
    }

    /// Where `name` migrated to, if a tombstone is held.
    pub fn tombstone_of(&self, name: &str) -> Option<String> {
        self.shards[self.shard_of(name)]
            .store
            .lock()
            .unwrap()
            .tombstone_of(name)
            .map(str::to_string)
    }

    /// The cached fit for `name` iff it covers exactly `version` (see
    /// [`SessionStore::cached_model_at`]).
    pub fn cached_model_at(&self, name: &str, version: u64) -> Option<Arc<StatStackModel>> {
        self.shards[self.shard_of(name)]
            .store
            .lock()
            .unwrap()
            .cached_model_at(name, version)
    }

    /// Publish a remotely-fitted model for `name` at `version` (see
    /// [`SessionStore::install_model`]).
    pub fn install_model(&self, name: &str, version: u64, model: Arc<StatStackModel>) -> bool {
        self.shards[self.shard_of(name)]
            .store
            .lock()
            .unwrap()
            .install_model(name, version, model)
    }

    /// Live tombstones across all shards.
    pub fn tombstone_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.store.lock().unwrap().tombstone_count())
            .sum()
    }

    /// Per-shard statistics in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let store = s.store.lock().unwrap();
                let (window_bytes, probation_bytes, protected_bytes) = store.segment_bytes();
                ShardStats {
                    bytes: store.bytes() as u64,
                    budget_bytes: store.budget_bytes() as u64,
                    sessions: store.len() as u64,
                    evictions: store.evictions(),
                    model_hits: store.model_hits(),
                    model_misses: store.model_misses(),
                    admission_accepted: store.admission_accepted(),
                    admission_rejected: store.admission_rejected(),
                    doorkeeper_hits: store.doorkeeper_hits(),
                    sketch_resets: store.sketch_resets(),
                    window_bytes,
                    probation_bytes,
                    protected_bytes,
                    access_drains: s.drains.load(Ordering::Relaxed),
                    access_dropped: s.dropped.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::{AccessKind, Pc};

    fn batch(n_reuse: usize) -> SampleBatch {
        SampleBatch {
            total_refs: 100,
            sample_period: 10,
            line_bytes: 64,
            reuse: (0..n_reuse)
                .map(|i| ReuseSample {
                    start_pc: Pc(1),
                    start_kind: AccessKind::Load,
                    end_pc: Pc(2),
                    end_kind: AccessKind::Load,
                    distance: i as u64,
                    start_index: i as u64,
                })
                .collect(),
            dangling: vec![],
            strides: vec![],
        }
    }

    #[test]
    fn submit_accumulates_and_get_refreshes() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("a", batch(10)).unwrap();
        s.submit("a", batch(5)).unwrap();
        let p = s.get("a").unwrap();
        assert_eq!(p.reuse.len(), 15);
        assert_eq!(p.total_refs, 200);
        assert!(s.get("missing").is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn budget_is_enforced_with_lru_eviction() {
        // Each 100-reuse batch is ~4 kB(+overhead); budget fits ~3.
        let mut s = SessionStore::new(16 << 10);
        for name in ["a", "b", "c", "d", "e"] {
            s.submit(name, batch(100)).unwrap();
            assert!(s.bytes() <= s.budget_bytes(), "invariant after {name}");
        }
        assert!(s.evictions() > 0, "pressure must evict");
        // "a" was least recently used → gone; "e" just written → alive.
        assert!(s.get("a").is_none());
        assert!(s.get("e").is_some());
    }

    #[test]
    fn recency_from_queries_protects_sessions() {
        let mut s = SessionStore::new(16 << 10);
        s.submit("old", batch(100)).unwrap();
        s.submit("mid", batch(100)).unwrap();
        s.get("old"); // refresh: now "mid" is the LRU
        loop {
            s.submit("new", batch(100)).unwrap();
            if s.get("mid").is_none() || s.get("old").is_none() {
                break;
            }
        }
        assert!(s.get("old").is_some(), "refreshed session outlives mid");
    }

    #[test]
    fn single_session_over_budget_is_evicted_too() {
        let mut s = SessionStore::new(1 << 10);
        let out = s.submit("huge", batch(1000)).unwrap();
        assert_eq!(out.store_bytes, 0, "store never exceeds budget");
        assert!(s.get("huge").is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn line_bytes_mismatch_is_rejected() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("a", batch(1)).unwrap();
        let mut b = batch(1);
        b.line_bytes = 128;
        assert_eq!(
            s.submit("a", b),
            Err(SubmitRejected::InconsistentLineBytes)
        );
    }

    #[test]
    fn name_index_survives_eviction_churn() {
        // swap_remove reshuffles entry positions; the name→index map must
        // track every move or lookups would hit the wrong session.
        let mut s = SessionStore::new(24 << 10);
        for round in 0..6u32 {
            for i in 0..8u32 {
                let name = format!("s{}", (round * 3 + i) % 10);
                s.submit(&name, batch(60)).unwrap();
                assert!(s.bytes() <= s.budget_bytes());
            }
        }
        // Every live session's profile is reachable under its own name
        // and line size is intact (i.e. no cross-wired indices).
        let live: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
        let mut found = 0;
        for name in &live {
            if let Some(p) = s.get(name) {
                assert_eq!(p.line_bytes, 64);
                assert_eq!(p.reuse.len() % 60, 0, "{name} holds whole batches");
                found += 1;
            }
        }
        assert_eq!(found, s.len(), "index and entries agree on liveness");
        assert!(s.evictions() > 0);
    }

    #[test]
    fn model_cache_hits_until_submit_invalidates() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("a", batch(50)).unwrap();
        let (m1, hit1) = s.model("a").unwrap();
        assert!(!hit1, "first fit is a miss");
        let (m2, hit2) = s.model("a").unwrap();
        assert!(hit2, "unchanged session reuses the fit");
        assert!(Arc::ptr_eq(&m1, &m2), "same published model");
        s.submit("a", batch(7)).unwrap();
        let (m3, hit3) = s.model("a").unwrap();
        assert!(!hit3, "submit bumped the version");
        assert_eq!(m3.sample_count(), 57);
        assert_eq!(s.model_hits(), 1);
        assert_eq!(s.model_misses(), 2);
        assert!(s.model("missing").is_none());
    }

    #[test]
    fn incremental_session_model_matches_from_scratch() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("a", batch(40)).unwrap();
        s.model("a").unwrap(); // fit #1: pending-only path
        s.submit("a", batch(25)).unwrap();
        s.submit("a", batch(13)).unwrap();
        let (m, _) = s.model("a").unwrap(); // fit #2: extend path, 2 batches
        let direct = StatStackModel::from_profile(s.get("a").unwrap());
        for lines in [0u64, 1, 10, 39, 1000] {
            assert_eq!(
                m.miss_ratio(lines).to_bits(),
                direct.miss_ratio(lines).to_bits(),
                "MR({lines})"
            );
        }
        assert_eq!(m.sample_count(), direct.sample_count());
    }

    #[test]
    fn export_import_roundtrip_preserves_model_and_version() {
        let mut a = SessionStore::new(1 << 20);
        a.submit("s", batch(40)).unwrap();
        a.submit("s", batch(10)).unwrap();
        let (fitted, _) = a.model("s").unwrap();
        let ex = a.export("s").unwrap();
        assert_eq!(ex.version, 2);
        assert!(Arc::ptr_eq(ex.model.as_ref().unwrap(), &fitted));
        assert_eq!(ex.batch.reuse.len(), 50);

        let mut b = SessionStore::new(1 << 20);
        b.import("s", ex.version, ex.batch, ex.model).unwrap();
        assert_eq!(b.version_of("s"), Some(2));
        let (m, hit) = b.model("s").unwrap();
        assert!(hit, "imported model serves without a refit");
        assert!(Arc::ptr_eq(&m, &fitted));
        assert_eq!(b.model_misses(), 0);
        // Profile carried over losslessly: a post-import submit extends
        // incrementally and matches a from-scratch fit.
        b.submit("s", batch(7)).unwrap();
        assert_eq!(b.version_of("s"), Some(3));
        let (m2, _) = b.model("s").unwrap();
        let direct = StatStackModel::from_profile(b.get("s").unwrap());
        for lines in [0u64, 5, 40, 500] {
            assert_eq!(m2.miss_ratio(lines).to_bits(), direct.miss_ratio(lines).to_bits());
        }
    }

    #[test]
    fn export_without_fresh_fit_ships_no_model() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("s", batch(20)).unwrap();
        s.model("s").unwrap();
        s.submit("s", batch(5)).unwrap(); // cache now stale
        let ex = s.export("s").unwrap();
        assert!(ex.model.is_none(), "stale cache must not travel");
        let mut b = SessionStore::new(1 << 20);
        b.import("s", ex.version, ex.batch, ex.model).unwrap();
        let (m, hit) = b.model("s").unwrap();
        assert!(!hit);
        assert_eq!(m.sample_count(), 25, "pending holds the full profile");
    }

    #[test]
    fn remove_migrated_is_version_guarded_and_leaves_tombstone() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("s", batch(10)).unwrap();
        let ex = s.export("s").unwrap();
        // A submit racing the snapshot bumps the version → removal must
        // refuse so the new samples are not silently dropped.
        s.submit("s", batch(3)).unwrap();
        assert!(!s.remove_migrated("s", ex.version, "peer:1"));
        assert!(s.contains("s"));
        let ex2 = s.export("s").unwrap();
        assert!(s.remove_migrated("s", ex2.version, "peer:1"));
        assert!(!s.contains("s"));
        assert_eq!(s.tombstone_of("s"), Some("peer:1"));
        assert_eq!(s.tombstone_count(), 1);
        // Removing an already-gone session is a success (evicted is fine).
        assert!(s.remove_migrated("never", 9, "peer:2"));
        // A fresh local submit clears the forwarding hint.
        s.submit("s", batch(1)).unwrap();
        assert_eq!(s.tombstone_of("s"), None);
    }

    #[test]
    fn import_replaces_existing_entry_and_clears_tombstone() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("s", batch(30)).unwrap();
        let ex = s.export("s").unwrap();
        assert!(s.remove_migrated("s", ex.version, "elsewhere"));
        // The session comes back (ring flapped): import must clear the
        // tombstone and install the authoritative copy.
        let mut other = SessionStore::new(1 << 20);
        other.submit("s", batch(30)).unwrap();
        other.submit("s", batch(4)).unwrap();
        let back = other.export("s").unwrap();
        s.import("s", back.version, back.batch, back.model).unwrap();
        assert_eq!(s.tombstone_of("s"), None);
        assert_eq!(s.version_of("s"), Some(2));
        assert_eq!(s.get("s").unwrap().reuse.len(), 34);
        let bytes = s.bytes();
        assert!(bytes <= s.budget_bytes());
    }

    #[test]
    fn sharded_export_import_and_tombstones() {
        let a = ShardedSessionStore::new(1 << 20, 4);
        for i in 0..6u32 {
            a.submit(&format!("s{i}"), batch(10 + i as usize)).unwrap();
        }
        let mut names = a.session_names();
        names.sort();
        assert_eq!(names, (0..6).map(|i| format!("s{i}")).collect::<Vec<_>>());
        let b = ShardedSessionStore::new(1 << 20, 2);
        for name in &names {
            let ex = a.export(name).unwrap();
            b.import(name, ex.version, ex.batch, ex.model).unwrap();
            assert!(a.remove_migrated(name, ex.version, "b:0"));
        }
        assert!(a.is_empty());
        assert_eq!(a.bytes(), 0, "byte gauges drained with the sessions");
        assert_eq!(a.tombstone_count(), 6);
        assert_eq!(a.tombstone_of("s3"), Some("b:0".to_string()));
        assert_eq!(b.len(), 6);
        for (i, name) in names.iter().enumerate() {
            assert_eq!(b.version_of(name), Some(1));
            assert!(b.contains(name));
            b.with_profile(name, |p| assert_eq!(p.reuse.len(), 10 + i)).unwrap();
        }
    }

    #[test]
    fn sharded_store_routes_and_respects_aggregate_budget() {
        let s = ShardedSessionStore::new(64 << 10, 4);
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.budget_bytes(), 64 << 10);
        // Names deterministically map to shards and stay there.
        for i in 0..32u32 {
            let name = format!("app-{i}");
            assert_eq!(s.shard_of(&name), s.shard_of(&name));
            s.submit(&name, batch(100)).unwrap();
            assert!(
                s.bytes() <= s.budget_bytes() as u64,
                "aggregate within budget after {name}"
            );
        }
        let stats = s.shard_stats();
        assert_eq!(stats.len(), 4);
        for (i, st) in stats.iter().enumerate() {
            assert!(st.bytes <= st.budget_bytes, "shard {i} within its slice");
        }
        assert_eq!(
            stats.iter().map(|st| st.bytes).sum::<u64>(),
            s.bytes(),
            "gauges mirror the stores"
        );
        assert!(s.evictions() > 0, "32 × 4 kB over 64 kB must evict");
        assert_eq!(s.len(), stats.iter().map(|st| st.sessions).sum::<u64>() as usize);
    }

    #[test]
    fn sharded_eviction_spares_the_hottest_session() {
        let s = ShardedSessionStore::new(48 << 10, 4);
        s.submit("hot", batch(100)).unwrap();
        // Hammer "hot" with queries while flooding its own shard with
        // fresh sessions; recency must keep it alive within its shard.
        let shard = s.shard_of("hot");
        let mut flooded = 0;
        let mut i = 0;
        while flooded < 12 {
            let name = format!("cold-{i}");
            i += 1;
            if s.shard_of(&name) != shard {
                continue;
            }
            s.with_profile("hot", |_| ()).expect("hot stays live");
            s.submit(&name, batch(100)).unwrap();
            flooded += 1;
        }
        assert!(s.with_profile("hot", |_| ()).is_some(), "hottest survives");
        assert!(s.evictions() > 0, "flooding the shard evicted colder ones");
        assert!(s.bytes() <= s.budget_bytes() as u64);
    }

    #[test]
    fn tinylfu_under_budget_never_evicts_or_rejects() {
        // Replay-safety: while the store fits its budget, admission
        // must be invisible — no eviction, no rejection, every session
        // answerable — or per-policy replay digests would diverge.
        let mut s = SessionStore::with_policy(1 << 20, StorePolicy::TinyLfu);
        for name in ["a", "b", "c", "d", "e", "f"] {
            s.submit(name, batch(50)).unwrap();
        }
        for name in ["a", "b", "c", "d", "e", "f"] {
            assert!(s.get(name).is_some());
            assert!(s.model(name).is_some());
        }
        assert_eq!(s.len(), 6);
        assert_eq!(s.evictions(), 0);
        assert_eq!(s.admission_rejected(), 0);
        let (w, p, pr) = s.segment_bytes();
        assert_eq!((w + p + pr) as usize, s.bytes(), "segments partition the gauge");
    }

    #[test]
    fn tinylfu_protects_hot_session_from_one_shot_flood_where_lru_loses_it() {
        // Same operation sequence on both policies: build up one hot
        // session, then flood with one-shot sessions that together
        // exceed the budget several times over. LRU flushes the hot
        // session; W-TinyLFU's admission filter keeps it.
        let run = |policy: StorePolicy| {
            let mut s = SessionStore::with_policy(16 << 10, policy);
            for _ in 0..3 {
                s.submit("hot", batch(100)).unwrap();
            }
            for i in 0..20 {
                s.submit(&format!("flood-{i}"), batch(100)).unwrap();
            }
            s
        };
        let mut lru = run(StorePolicy::Lru);
        assert!(lru.get("hot").is_none(), "LRU loses the hot session to the flood");
        let mut lfu = run(StorePolicy::TinyLfu);
        assert!(lfu.get("hot").is_some(), "admission keeps the hot session");
        assert!(lfu.admission_rejected() > 0, "one-shots were turned away");
        assert!(lfu.evictions() > 0, "rejected window victims count as evictions");
        assert!(lfu.bytes() <= lfu.budget_bytes());
        let (w, p, pr) = lfu.segment_bytes();
        assert_eq!((w + p + pr) as usize, lfu.bytes());
    }

    #[test]
    fn tinylfu_import_with_model_beats_admission_where_plain_import_fails() {
        // A fitted model travels with a migrating session; the importer
        // must not let its admission filter discard what fleet-wide
        // fit-at-most-once just paid to ship.
        let mut exporter = SessionStore::new(1 << 20);
        exporter.submit("migrant", batch(100)).unwrap();
        exporter.model("migrant").unwrap();
        let ex = exporter.export("migrant").unwrap();
        assert!(ex.model.is_some());

        let setup = || {
            let mut s = SessionStore::with_policy(16 << 10, StorePolicy::TinyLfu);
            for _ in 0..3 {
                s.submit("resident", batch(100)).unwrap();
            }
            s.submit("filler", batch(100)).unwrap();
            s
        };
        // Without the cached model the migrant's frequency is 1 — it
        // cannot beat even the coldest main entry, and is rejected.
        let mut plain = setup();
        plain
            .import("migrant", ex.version, ex.batch.clone(), None)
            .unwrap();
        assert!(plain.get("migrant").is_none(), "freq-1 import loses admission");
        // With the model the boost carries it past the cold filler.
        let mut boosted = setup();
        boosted
            .import("migrant", ex.version, ex.batch.clone(), ex.model.clone())
            .unwrap();
        assert!(boosted.get("migrant").is_some(), "model-carrying import admitted");
        let (m, hit) = boosted.model("migrant").unwrap();
        assert!(hit, "the shipped fit serves without a refit");
        assert!(Arc::ptr_eq(&m, ex.model.as_ref().unwrap()));
        assert!(boosted.get("resident").is_some(), "hot resident untouched");
    }

    #[test]
    fn tinylfu_probation_promotes_to_protected_on_touch() {
        let mut s = SessionStore::with_policy(64 << 10, StorePolicy::TinyLfu);
        s.submit("a", batch(100)).unwrap(); // window → probation (overflow)
        let (_, p0, pr0) = s.segment_bytes();
        assert!(p0 > 0, "first session admitted to probation");
        assert_eq!(pr0, 0);
        s.get("a").unwrap(); // touch → protected
        let (_, p1, pr1) = s.segment_bytes();
        assert_eq!(p1, 0);
        assert_eq!(pr1, p0, "touched probation entry moved wholesale");
    }

    #[test]
    fn tombstone_cap_drops_oldest_first() {
        let mut s = SessionStore::new(64 << 20);
        let extra = 100;
        for i in 0..(MAX_TOMBSTONES + extra) {
            let name = format!("t{i}");
            s.submit(&name, batch(1)).unwrap();
            let v = s.version_of(&name).unwrap();
            assert!(s.remove_migrated(&name, v, "peer:9"));
            assert!(s.tombstone_count() <= MAX_TOMBSTONES, "bound holds after t{i}");
        }
        assert_eq!(s.tombstone_count(), MAX_TOMBSTONES);
        // FIFO: exactly the oldest `extra` tombstones were dropped.
        for i in 0..extra {
            assert!(s.tombstone_of(&format!("t{i}")).is_none(), "t{i} (oldest) dropped");
        }
        for i in extra..(MAX_TOMBSTONES + extra) {
            assert_eq!(s.tombstone_of(&format!("t{i}")), Some("peer:9"), "t{i} kept");
        }
    }

    #[test]
    fn sharded_tinylfu_batches_read_recording_off_the_hot_path() {
        let s = ShardedSessionStore::with_policy(1 << 20, 1, StorePolicy::TinyLfu);
        s.submit("a", batch(10)).unwrap();
        // A burst of reads records through the striped buffer: drains
        // happen in batches (under the lock each read already held for
        // its lookup), not once per read.
        for _ in 0..1000 {
            s.model("a").unwrap();
        }
        let st = &s.shard_stats()[0];
        assert!(st.access_drains > 0, "reads fed the sketch");
        assert!(
            st.access_drains <= 1000 / 64 + 2,
            "{} drains for 1000 reads is not batched",
            st.access_drains
        );
    }

    #[test]
    fn sharded_model_cache_and_profiles_are_consistent() {
        let s = ShardedSessionStore::new(1 << 20, 8);
        for i in 0..10u32 {
            s.submit(&format!("s{i}"), batch(30 + i as usize)).unwrap();
        }
        for i in 0..10u32 {
            let name = format!("s{i}");
            let (m, hit) = s.model(&name).unwrap();
            assert!(!hit);
            assert_eq!(m.sample_count(), 30 + u64::from(i));
            let (m2, hit2) = s.model(&name).unwrap();
            assert!(hit2);
            assert!(Arc::ptr_eq(&m, &m2));
            let ((), hit3) = s
                .with_profile_and_model(&name, |p, model| {
                    assert_eq!(p.reuse.len() as u64, model.sample_count());
                })
                .unwrap();
            assert!(hit3);
        }
        let stats = s.shard_stats();
        assert_eq!(stats.iter().map(|st| st.model_misses).sum::<u64>(), 10);
        assert_eq!(stats.iter().map(|st| st.model_hits).sum::<u64>(), 20);
    }
}
