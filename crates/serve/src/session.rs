//! The per-session profile store: named, client-submitted sampling
//! profiles held under a configurable byte budget with least-recently-used
//! eviction — the server's only unboundedly-client-driven memory, so it is
//! the one place that must degrade instead of grow.

use crate::proto::SampleBatch;
use repf_sampling::{DanglingSample, Profile, ReuseSample, StrideSample};

/// Fixed per-session bookkeeping charge (name, map entry, vec headers).
const SESSION_OVERHEAD_BYTES: usize = 256;

/// Approximate heap footprint of a profile's sample vectors.
fn profile_bytes(p: &Profile) -> usize {
    p.reuse.len() * std::mem::size_of::<ReuseSample>()
        + p.dangling.len() * std::mem::size_of::<DanglingSample>()
        + p.strides.len() * std::mem::size_of::<StrideSample>()
}

struct SessionEntry {
    name: String,
    profile: Profile,
    bytes: usize,
    last_used: u64,
}

/// Outcome of a successful submit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Store-wide bytes after the submit (≤ the budget).
    pub store_bytes: u64,
    /// Sessions evicted to fit the budget.
    pub evicted: u32,
}

/// Why a submit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitRejected {
    /// The batch's `line_bytes` disagrees with earlier batches of the
    /// same session — mixing them would corrupt the model.
    InconsistentLineBytes,
}

/// An LRU-evicting session store with a hard byte budget.
///
/// Eviction happens on submit: after a batch is appended, least-recently
/// *used* sessions (submits and queries both refresh recency) are dropped
/// until the store fits the budget again. The session just written is
/// evicted only if it alone exceeds the whole budget, so the invariant
/// `bytes() ≤ budget` holds unconditionally after every operation.
pub struct SessionStore {
    budget_bytes: usize,
    entries: Vec<SessionEntry>,
    clock: u64,
    bytes: usize,
    evictions: u64,
}

impl SessionStore {
    /// An empty store with the given byte budget (clamped to ≥ 1 so a
    /// zero budget means "keep nothing", not "unbounded").
    pub fn new(budget_bytes: usize) -> Self {
        SessionStore {
            budget_bytes: budget_bytes.max(1),
            entries: Vec::new(),
            clock: 0,
            bytes: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// Append a batch to `name`'s profile, creating the session on first
    /// use, then evict LRU sessions until the store fits its budget.
    pub fn submit(
        &mut self,
        name: &str,
        batch: SampleBatch,
    ) -> Result<SubmitOutcome, SubmitRejected> {
        let now = self.tick();
        let ix = match self.index_of(name) {
            Some(ix) => ix,
            None => {
                self.entries.push(SessionEntry {
                    name: name.to_string(),
                    profile: Profile {
                        sample_period: batch.sample_period,
                        line_bytes: batch.line_bytes,
                        ..Profile::default()
                    },
                    bytes: SESSION_OVERHEAD_BYTES + name.len(),
                    last_used: now,
                });
                self.bytes += SESSION_OVERHEAD_BYTES + name.len();
                self.entries.len() - 1
            }
        };
        let entry = &mut self.entries[ix];
        if entry.profile.line_bytes != batch.line_bytes {
            return Err(SubmitRejected::InconsistentLineBytes);
        }
        let before = profile_bytes(&entry.profile);
        entry.profile.total_refs += batch.total_refs;
        entry.profile.sample_period = batch.sample_period;
        entry.profile.reuse.extend(batch.reuse);
        entry.profile.dangling.extend(batch.dangling);
        entry.profile.strides.extend(batch.strides);
        let grown = profile_bytes(&entry.profile) - before;
        entry.bytes += grown;
        entry.last_used = now;
        self.bytes += grown;

        let mut evicted = 0u32;
        while self.bytes > self.budget_bytes && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .unwrap();
            let e = self.entries.swap_remove(victim);
            self.bytes -= e.bytes;
            self.evictions += 1;
            evicted += 1;
        }
        Ok(SubmitOutcome {
            store_bytes: self.bytes as u64,
            evicted,
        })
    }

    /// The profile of `name`, refreshing its recency. `None` when the
    /// session does not exist (never created, or evicted).
    pub fn get(&mut self, name: &str) -> Option<&Profile> {
        let now = self.tick();
        let ix = self.index_of(name)?;
        self.entries[ix].last_used = now;
        Some(&self.entries[ix].profile)
    }

    /// Current bytes held (always ≤ the budget).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no session is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total sessions evicted over the store's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::{AccessKind, Pc};

    fn batch(n_reuse: usize) -> SampleBatch {
        SampleBatch {
            total_refs: 100,
            sample_period: 10,
            line_bytes: 64,
            reuse: (0..n_reuse)
                .map(|i| ReuseSample {
                    start_pc: Pc(1),
                    start_kind: AccessKind::Load,
                    end_pc: Pc(2),
                    end_kind: AccessKind::Load,
                    distance: i as u64,
                    start_index: i as u64,
                })
                .collect(),
            dangling: vec![],
            strides: vec![],
        }
    }

    #[test]
    fn submit_accumulates_and_get_refreshes() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("a", batch(10)).unwrap();
        s.submit("a", batch(5)).unwrap();
        let p = s.get("a").unwrap();
        assert_eq!(p.reuse.len(), 15);
        assert_eq!(p.total_refs, 200);
        assert!(s.get("missing").is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn budget_is_enforced_with_lru_eviction() {
        // Each 100-reuse batch is ~4 kB(+overhead); budget fits ~3.
        let mut s = SessionStore::new(16 << 10);
        for name in ["a", "b", "c", "d", "e"] {
            s.submit(name, batch(100)).unwrap();
            assert!(s.bytes() <= s.budget_bytes(), "invariant after {name}");
        }
        assert!(s.evictions() > 0, "pressure must evict");
        // "a" was least recently used → gone; "e" just written → alive.
        assert!(s.get("a").is_none());
        assert!(s.get("e").is_some());
    }

    #[test]
    fn recency_from_queries_protects_sessions() {
        let mut s = SessionStore::new(16 << 10);
        s.submit("old", batch(100)).unwrap();
        s.submit("mid", batch(100)).unwrap();
        s.get("old"); // refresh: now "mid" is the LRU
        loop {
            s.submit("new", batch(100)).unwrap();
            if s.get("mid").is_none() || s.get("old").is_none() {
                break;
            }
        }
        assert!(s.get("old").is_some(), "refreshed session outlives mid");
    }

    #[test]
    fn single_session_over_budget_is_evicted_too() {
        let mut s = SessionStore::new(1 << 10);
        let out = s.submit("huge", batch(1000)).unwrap();
        assert_eq!(out.store_bytes, 0, "store never exceeds budget");
        assert!(s.get("huge").is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn line_bytes_mismatch_is_rejected() {
        let mut s = SessionStore::new(1 << 20);
        s.submit("a", batch(1)).unwrap();
        let mut b = batch(1);
        b.line_bytes = 128;
        assert_eq!(
            s.submit("a", b),
            Err(SubmitRejected::InconsistentLineBytes)
        );
    }
}
