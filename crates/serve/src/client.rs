//! A blocking client for the serve protocol: one TCP connection, one
//! in-flight request at a time (responses arrive in request order).

use crate::proto::{
    self, ErrorCode, FrameReadError, MachineId, PlanWire, ProtoError, Request, Response,
    SampleBatch, Target,
};
use repf_sampling::Profile;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Proto(ProtoError),
    /// The server answered [`Response::Busy`] — back off and retry.
    Busy,
    /// The server answered an error response.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server closed the connection mid-call.
    Disconnected,
    /// The response type did not match the request.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy => write!(f, "server busy"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Disconnected => {
                write!(f, "connection closed by server (daemon gone or shutting down)")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Set a read timeout for responses (`None` blocks indefinitely).
    pub fn set_timeout(&mut self, t: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(t)?;
        self.stream.set_write_timeout(t)?;
        Ok(())
    }

    /// Send `req` and wait for its response. Surfaces `Busy` and server
    /// errors as [`ClientError`] variants; protocol-level responses
    /// (`Pong`, `Mrc`, ...) are returned for the caller to match.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.call_any(req)? {
            Response::Busy => Err(ClientError::Busy),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Send `req` and return whatever response arrives — `Busy` and
    /// `Error` included, undisturbed. The replay harness compares raw
    /// responses bit-for-bit, so nothing may be folded into errors here.
    ///
    /// A connection the server closed (EOF, reset, broken pipe — e.g. a
    /// daemon shutting down mid-request) is reported as
    /// [`ClientError::Disconnected`], not as a raw io error chain.
    pub fn call_any(&mut self, req: &Request) -> Result<Response, ClientError> {
        proto::write_frame(&mut self.stream, &req.encode()).map_err(Self::map_closed)?;
        let body = match proto::read_frame(&mut self.stream) {
            Ok(Some(body)) => body,
            Ok(None) => return Err(ClientError::Disconnected),
            Err(FrameReadError::Io(e)) => return Err(Self::map_closed(e)),
            Err(FrameReadError::Proto(e)) => return Err(ClientError::Proto(e)),
        };
        Response::decode(&body).map_err(ClientError::Proto)
    }

    /// Fold the io-error kinds that mean "the peer hung up" into the
    /// typed [`ClientError::Disconnected`]; everything else stays io.
    fn map_closed(e: std::io::Error) -> ClientError {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => ClientError::Disconnected,
            _ => ClientError::Io(e),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("want Pong")),
        }
    }

    /// Submit a whole sampling profile to a named session. Returns
    /// `(store_bytes, evicted)`.
    pub fn submit_profile(
        &mut self,
        session: &str,
        profile: &Profile,
    ) -> Result<(u64, u32), ClientError> {
        self.submit_batch(session, SampleBatch::from_profile(profile))
    }

    /// Submit one batch to a named session.
    pub fn submit_batch(
        &mut self,
        session: &str,
        batch: SampleBatch,
    ) -> Result<(u64, u32), ClientError> {
        match self.call(&Request::Submit {
            session: session.to_string(),
            batch,
        })? {
            Response::Accepted {
                store_bytes,
                evicted,
            } => Ok((store_bytes, evicted)),
            _ => Err(ClientError::Unexpected("want Accepted")),
        }
    }

    /// Application miss ratios of `target` at `sizes_bytes`.
    pub fn query_mrc(
        &mut self,
        target: Target,
        sizes_bytes: Vec<u64>,
    ) -> Result<Vec<f64>, ClientError> {
        match self.call(&Request::QueryMrc {
            target,
            sizes_bytes,
        })? {
            Response::Mrc { ratios } => Ok(ratios),
            _ => Err(ClientError::Unexpected("want Mrc")),
        }
    }

    /// Per-PC miss ratios (`None` when the PC has no samples).
    pub fn query_pc_mrc(
        &mut self,
        target: Target,
        pc: u32,
        sizes_bytes: Vec<u64>,
    ) -> Result<Option<Vec<f64>>, ClientError> {
        match self.call(&Request::QueryPcMrc {
            target,
            pc,
            sizes_bytes,
        })? {
            Response::PcMrc { ratios } => Ok(ratios),
            _ => Err(ClientError::Unexpected("want PcMrc")),
        }
    }

    /// Full prefetch plan for `target` analyzed for `machine`.
    pub fn query_plan(
        &mut self,
        target: Target,
        machine: MachineId,
        delta: f64,
    ) -> Result<PlanWire, ClientError> {
        match self.call(&Request::QueryPlan {
            target,
            machine,
            delta,
        })? {
            Response::Plan(p) => Ok(p),
            _ => Err(ClientError::Unexpected("want Plan")),
        }
    }

    /// Predicted shared-cache behaviour of `sessions` co-running on one
    /// cache: per-session miss-ratio curves (request order) plus the
    /// mix-throughput estimate, one entry per size. `intensities` is
    /// either empty (per-session weights inferred from sample counts,
    /// bit-exact with the pre-override wire format) or one weight per
    /// session.
    #[allow(clippy::type_complexity)]
    pub fn co_run(
        &mut self,
        sessions: Vec<String>,
        sizes_bytes: Vec<u64>,
        intensities: Vec<f64>,
    ) -> Result<(Vec<(String, Vec<f64>)>, Vec<f64>), ClientError> {
        match self.call(&Request::CoRun {
            sessions,
            sizes_bytes,
            intensities,
        })? {
            Response::CoRun {
                per_session,
                throughput,
            } => Ok((per_session, throughput)),
            _ => Err(ClientError::Unexpected("want CoRun")),
        }
    }

    /// Search co-run placements of `sessions` into `groups` cache-sharing
    /// groups of at most `capacity` members, minimizing the predicted
    /// aggregate miss ratio at `size_bytes`. Returns the winning
    /// grouping (session names, canonical order), its aggregate miss
    /// ratio and throughput estimate, and the search counters
    /// `(nodes_explored, pruned)`.
    #[allow(clippy::type_complexity)]
    pub fn place(
        &mut self,
        sessions: Vec<String>,
        groups: u32,
        capacity: u32,
        size_bytes: u64,
        intensities: Vec<f64>,
    ) -> Result<(Vec<Vec<String>>, f64, f64, (u64, u64)), ClientError> {
        match self.call(&Request::Place {
            sessions,
            groups,
            capacity,
            size_bytes,
            intensities,
        })? {
            Response::Placement {
                groups,
                total_miss_ratio,
                throughput,
                nodes_explored,
                pruned,
            } => Ok((groups, total_miss_ratio, throughput, (nodes_explored, pruned))),
            _ => Err(ClientError::Unexpected("want Placement")),
        }
    }

    /// Server metrics snapshot.
    pub fn stats(&mut self) -> Result<Vec<(String, f64)>, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            _ => Err(ClientError::Unexpected("want Stats")),
        }
    }

    /// Send the shutdown control message; the server acknowledges, then
    /// drains in-flight work and exits.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("want ShuttingDown")),
        }
    }
}
