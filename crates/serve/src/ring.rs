//! Seeded consistent-hash ring with virtual nodes: the single source of
//! truth for session → node placement in the cluster tier.
//!
//! Every member contributes `vnodes` points to a 64-bit hash circle
//! (FNV-1a over `(seed, member name, vnode index)`); a key is owned by
//! the member contributing the first point clockwise from the key's own
//! hash. The ring is a pure function of `(seed, vnodes, member set)`, so
//! every party that knows the membership — each daemon, the replay
//! harness, the load generator's fan-out — computes identical placement
//! without coordination. Virtual nodes keep the shares balanced and make
//! membership changes *minimal*: adding a member only reassigns the keys
//! that land on its points, removing one only reassigns its own keys
//! (asserted by the disruption tests below).
//!
//! Members are identified by their advertised address strings; ties on a
//! hash point (astronomically rare) break by member name so placement
//! never depends on the order the membership list was written in.

/// Default ring seed: every party must agree on it (or carry an explicit
/// one in `RingSet`), since placement is a function of the seed.
pub const DEFAULT_RING_SEED: u64 = 0xC105_7E55_EED5;

/// Default virtual nodes per member. 64 keeps the worst member share
/// within ~2x of fair for small clusters while the ring stays tiny.
pub const DEFAULT_VNODES: u32 = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// splitmix64 finalizer: FNV-1a alone avalanches poorly in the high
/// bits, and ring members are *near-identical* strings (addresses
/// differing in one port digit), which would cluster their points on
/// one arc of the circle. The finalizer spreads them uniformly.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash point for virtual node `vnode` of member `node` under `seed`.
fn point_hash(seed: u64, node: &str, vnode: u32) -> u64 {
    let h = fnv1a(FNV_OFFSET, &seed.to_le_bytes());
    let h = fnv1a(h, node.as_bytes());
    // A separator byte keeps ("n1", 2) and ("n12", ...) streams distinct
    // even though member names are arbitrary strings.
    let h = fnv1a(h, &[0xFF]);
    mix(fnv1a(h, &vnode.to_le_bytes()))
}

/// Hash of a key (session name) onto the circle.
fn key_hash(seed: u64, key: &str) -> u64 {
    let h = fnv1a(FNV_OFFSET, &seed.to_le_bytes());
    mix(fnv1a(h, key.as_bytes()))
}

/// A consistent-hash ring over named members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ring {
    seed: u64,
    vnodes: u32,
    nodes: Vec<String>,
    /// `(point, member index)`, sorted by point (ties by member name).
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// Build the ring for a member set. Duplicate names are collapsed
    /// (placement is a function of the *set*); `vnodes` is clamped ≥ 1.
    pub fn new(seed: u64, vnodes: u32, mut nodes: Vec<String>) -> Ring {
        nodes.dedup_by(|a, b| a == b); // adjacent dups
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes.len() * vnodes as usize);
        for (i, node) in nodes.iter().enumerate() {
            if nodes[..i].contains(node) {
                continue; // non-adjacent duplicate
            }
            for v in 0..vnodes {
                points.push((point_hash(seed, node, v), i as u32));
            }
        }
        points.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| nodes[a.1 as usize].cmp(&nodes[b.1 as usize]))
        });
        Ring {
            seed,
            vnodes,
            nodes,
            points,
        }
    }

    /// The seed placement was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Member names in wire order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no members (placement undefined).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of `node` in the member list.
    pub fn index_of(&self, node: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n == node)
    }

    /// True when `node` is a member.
    pub fn contains(&self, node: &str) -> bool {
        self.index_of(node).is_some()
    }

    /// Member index owning `key`, or `None` on an empty ring.
    pub fn owner_index(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = key_hash(self.seed, key);
        // First point at or clockwise-after the key's hash; wrap to the
        // first point when the key hashes past the last one.
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = self.points[if i == self.points.len() { 0 } else { i }];
        Some(node as usize)
    }

    /// Member name owning `key`, or `None` on an empty ring.
    pub fn owner(&self, key: &str) -> Option<&str> {
        self.owner_index(key).map(|i| self.nodes[i].as_str())
    }

    /// Fraction of the hash circle owned by member `index` (sums to 1.0
    /// across members). This is the per-node ownership gauge's source.
    pub fn share(&self, index: usize) -> f64 {
        if self.points.is_empty() || index >= self.nodes.len() {
            return 0.0;
        }
        let mut owned: u128 = 0;
        for (i, &(p, node)) in self.points.iter().enumerate() {
            // The arc *ending* at point `i` (exclusive start at the
            // previous point) belongs to point `i`'s member.
            let prev = if i == 0 {
                self.points[self.points.len() - 1].0
            } else {
                self.points[i - 1].0
            };
            if node as usize == index {
                owned += u128::from(p.wrapping_sub(prev));
            }
        }
        owned as f64 / (u128::from(u64::MAX) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let a = Ring::new(7, 64, names(3));
        let b = Ring::new(7, 64, names(3));
        let mut rev = names(3);
        rev.reverse();
        let c = Ring::new(7, 64, rev);
        for k in 0..500 {
            let key = format!("session-{k}");
            assert_eq!(a.owner(&key), b.owner(&key), "same inputs, same owner");
            assert_eq!(
                a.owner(&key),
                c.owner(&key),
                "owner is a function of the member *set*, not list order"
            );
        }
    }

    #[test]
    fn seed_changes_placement() {
        let a = Ring::new(1, 64, names(4));
        let b = Ring::new(2, 64, names(4));
        let moved = (0..1000)
            .filter(|k| {
                let key = format!("s{k}");
                a.owner(&key) != b.owner(&key)
            })
            .count();
        assert!(moved > 200, "a new seed reshuffles placement ({moved} moved)");
    }

    #[test]
    fn shares_are_roughly_balanced() {
        let ring = Ring::new(DEFAULT_RING_SEED, DEFAULT_VNODES, names(3));
        let mut counts = [0usize; 3];
        for k in 0..9000 {
            counts[ring.owner_index(&format!("session-{k}")).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (900..6600).contains(&c),
                "node {i} owns {c}/9000 keys — vnodes should keep shares sane"
            );
        }
        let total: f64 = (0..3).map(|i| ring.share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1 ({total})");
    }

    #[test]
    fn join_only_moves_keys_to_the_joiner() {
        let old = Ring::new(3, 64, names(3));
        let mut grown = names(3);
        grown.push("127.0.0.1:9100".to_string());
        let new = Ring::new(3, 64, grown);
        let mut moved = 0;
        for k in 0..3000 {
            let key = format!("session-{k}");
            let before = old.owner(&key).unwrap();
            let after = new.owner(&key).unwrap();
            if before != after {
                moved += 1;
                assert_eq!(
                    after, "127.0.0.1:9100",
                    "a join may only reassign keys *to* the joiner"
                );
            }
        }
        assert!(moved > 0, "the joiner must take some load");
        assert!(moved < 1800, "a join must not reshuffle most keys ({moved})");
    }

    #[test]
    fn drain_only_moves_the_drained_nodes_keys() {
        let old = Ring::new(3, 64, names(3));
        let new = Ring::new(3, 64, names(2)); // drop the last member
        let drained = old.nodes()[2].clone();
        for k in 0..3000 {
            let key = format!("session-{k}");
            let before = old.owner(&key).unwrap();
            let after = new.owner(&key).unwrap();
            if before != drained {
                assert_eq!(before, after, "surviving members keep their keys");
            } else {
                assert_ne!(after, drained);
            }
        }
    }

    #[test]
    fn empty_and_singleton_rings() {
        let empty = Ring::new(1, 64, vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.owner("x"), None);
        assert_eq!(empty.share(0), 0.0);
        let solo = Ring::new(1, 64, vec!["only".into()]);
        for k in 0..50 {
            assert_eq!(solo.owner(&format!("s{k}")), Some("only"));
        }
        assert!((solo.share(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_members_collapse() {
        let dup = Ring::new(
            5,
            32,
            vec!["a".into(), "b".into(), "a".into(), "b".into()],
        );
        let clean = Ring::new(5, 32, vec!["a".into(), "b".into()]);
        for k in 0..200 {
            let key = format!("s{k}");
            assert_eq!(dup.owner(&key), clean.owner(&key));
        }
    }
}
