//! Cluster-tier state for `repf-serve`: the node's view of the
//! consistent-hash [`Ring`], its own advertised identity, and a pool of
//! reusable peer connections for node-to-node calls.
//!
//! The cluster design in one paragraph: the seeded ring
//! ([`crate::ring`]) is the single source of truth for session → node
//! placement; every daemon, the replay harness and the load generator
//! compute identical placement from `(seed, vnodes, member list)`.
//! Membership changes arrive as `RingSet` requests (normal frames on
//! normal connections); a node adopting a new ring synchronously ships
//! every session it no longer owns to the new owner — full profile,
//! version counter and cached model — *before* acknowledging, and the
//! session-store tombstones it leaves behind let it forward in-flight
//! requests during the handoff window, so clients holding a stale map
//! never see a wrong-node error. Misdirected requests are wrapped in
//! `PeerForward` frames with a hop budget, and the receiver handles
//! them locally (chasing at most a short tombstone chain), which makes
//! forwarding loop-free by construction.
//!
//! Orchestration ([`apply_membership`], used by `repf ring` and the
//! replay harness) applies a membership change *losers first*: nodes
//! leaving the ring (or losing keys) adopt before the nodes gaining
//! keys, so by the time any node starts claiming ownership of a session
//! its state has already been imported. Joiners are told last.
//!
//! Known accepted imperfections, by design and documented here rather
//! than hidden: a submit that lands between a migration's final
//! snapshot and its version-checked removal forces a re-export (bounded
//! retries; on exhaustion the session simply stays put and keeps being
//! served locally — no client-visible error), and peer calls carry a
//! hard timeout so mutual-forwarding storms degrade into `Internal`
//! errors instead of deadlocking worker pools.

use crate::client::{Client, ClientError};
use crate::proto::{Request, Response};
use crate::ring::{Ring, DEFAULT_RING_SEED, DEFAULT_VNODES};
use crate::session::ShardedSessionStore;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Hop budget on a freshly-forwarded request: how long a tombstone
/// chain may be chased before giving up with the local answer.
pub const MAX_FORWARD_HOPS: u8 = 4;

/// How often a migration re-exports after a submit raced the snapshot
/// before giving up and leaving the session where it is.
pub const MIGRATE_REDO_MAX: u32 = 8;

/// Read/write timeout on peer connections: a wedged peer turns into an
/// `Internal` error for the one forwarded request, never a stuck worker.
const PEER_TIMEOUT: Duration = Duration::from_secs(5);

/// Idle peer connections kept pooled per destination.
const MAX_IDLE_PEER_CONNS: usize = 4;

/// The ring(s) a node currently honors.
struct RingState {
    /// Monotone epoch; `RingSet` carrying an older epoch is ignored.
    epoch: u64,
    /// The ring in force (`None` until clustered).
    ring: Option<Ring>,
    /// The ring the current one replaced — consulted during the handoff
    /// window to forward reads for sessions that may not have finished
    /// migrating to this node yet.
    prev: Option<Ring>,
}

/// Where a session-addressed request must run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// Execute on this node.
    Local,
    /// Forward to the named peer.
    Forward(String),
}

/// One node's cluster-tier state: its advertised identity, the ring
/// epoch pair, and the peer connection pool.
pub struct ClusterState {
    /// This node's name on the ring — the advertised address every
    /// other party uses for it. Set once, right after bind.
    self_addr: OnceLock<String>,
    rings: Mutex<RingState>,
    /// Idle pooled connections per peer address.
    pool: Mutex<HashMap<String, Vec<Client>>>,
}

impl Default for ClusterState {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterState {
    /// Fresh, un-clustered state (epoch 0, no ring).
    pub fn new() -> Self {
        ClusterState {
            self_addr: OnceLock::new(),
            rings: Mutex::new(RingState {
                epoch: 0,
                ring: None,
                prev: None,
            }),
            pool: Mutex::new(HashMap::new()),
        }
    }

    /// Record this node's advertised address (first caller wins).
    pub fn set_self_addr(&self, addr: String) {
        let _ = self.self_addr.set(addr);
    }

    /// The advertised address, or `""` before bind.
    pub fn self_addr(&self) -> &str {
        self.self_addr.get().map(String::as_str).unwrap_or("")
    }

    /// `true` once a ring is in force.
    pub fn is_clustered(&self) -> bool {
        self.rings.lock().unwrap().ring.is_some()
    }

    /// Current `(epoch, ring)` — the `RingGet` answer.
    pub fn snapshot(&self) -> (u64, Option<Ring>) {
        let rs = self.rings.lock().unwrap();
        (rs.epoch, rs.ring.clone())
    }

    /// Adopt `ring` at `epoch`. Rejected (returning the current epoch)
    /// when `epoch` does not advance — duplicate or stale `RingSet`s
    /// must not re-trigger migration sweeps. On success the previous
    /// ring is retained for handoff-window forwarding.
    pub fn install_ring(&self, epoch: u64, ring: Ring) -> Result<(), u64> {
        let mut rs = self.rings.lock().unwrap();
        if rs.ring.is_some() && epoch <= rs.epoch {
            return Err(rs.epoch);
        }
        rs.prev = rs.ring.take();
        rs.ring = Some(ring);
        rs.epoch = epoch;
        Ok(())
    }

    /// Decide where a session-addressed request runs. The order
    /// encodes the handoff-window invariants:
    ///
    /// 1. the session is live here → [`Route::Local`] (stickiness: a
    ///    mid-migration ring disagreement never splits a session's
    ///    history across nodes);
    /// 2. a tombstone says it migrated away → forward to its new home;
    /// 3. this node owns it under the current ring but a *previous*
    ///    ring named someone else → forward reads there once (the old
    ///    owner either still holds it or holds a tombstone for it);
    ///    submits stay local — the owner is where sessions are born;
    /// 4. someone else owns it → forward to the owner;
    /// 5. otherwise local (including the un-clustered case).
    pub fn route(&self, session: &str, is_submit: bool, store: &ShardedSessionStore) -> Route {
        let rs = self.rings.lock().unwrap();
        let Some(ring) = rs.ring.as_ref() else {
            return Route::Local;
        };
        let me = self.self_addr();
        if store.contains(session) {
            return Route::Local;
        }
        if let Some(dest) = store.tombstone_of(session) {
            if dest != me {
                return Route::Forward(dest);
            }
        }
        let Some(owner) = ring.owner(session) else {
            return Route::Local;
        };
        if owner == me {
            if !is_submit {
                if let Some(prev_owner) = rs.prev.as_ref().and_then(|p| p.owner(session)) {
                    if prev_owner != me {
                        return Route::Forward(prev_owner.to_string());
                    }
                }
            }
            Route::Local
        } else {
            Route::Forward(owner.to_string())
        }
    }

    /// The one peer worth asking for a cached model of `session`: its
    /// owner under the previous ring, when that was a different node.
    /// (Sessions only change hands on ring changes, so the previous
    /// owner is the only plausible remote holder of a fresh fit.)
    pub fn pull_candidate(&self, session: &str) -> Option<String> {
        let rs = self.rings.lock().unwrap();
        rs.ring.as_ref()?;
        let prev_owner = rs.prev.as_ref()?.owner(session)?;
        if prev_owner == self.self_addr() {
            return None;
        }
        Some(prev_owner.to_string())
    }

    /// Call `dest` over a pooled connection, reconnecting once on a
    /// transport failure (the pooled socket may have been idled out).
    pub fn call(&self, dest: &str, req: &Request) -> Result<Response, ClientError> {
        let pooled = self.pool.lock().unwrap().get_mut(dest).and_then(Vec::pop);
        let had_pooled = pooled.is_some();
        let mut client = match pooled {
            Some(c) => c,
            None => Self::connect(dest)?,
        };
        match client.call_any(req) {
            Ok(resp) => {
                self.park(dest, client);
                Ok(resp)
            }
            Err(e) if had_pooled => {
                // The pooled socket was stale; one fresh attempt.
                drop(e);
                let mut fresh = Self::connect(dest)?;
                let resp = fresh.call_any(req)?;
                self.park(dest, fresh);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }

    fn connect(dest: &str) -> Result<Client, ClientError> {
        let mut c = Client::connect(dest)?;
        c.set_timeout(Some(PEER_TIMEOUT))?;
        Ok(c)
    }

    fn park(&self, dest: &str, client: Client) {
        let mut pool = self.pool.lock().unwrap();
        let idle = pool.entry(dest.to_string()).or_default();
        if idle.len() < MAX_IDLE_PEER_CONNS {
            idle.push(client);
        }
    }
}

/// A target ring membership, as orchestrated by `repf ring` and the
/// replay harness.
#[derive(Clone, Debug)]
pub struct RingSpec {
    /// Placement seed (every party must use the same one).
    pub seed: u64,
    /// Virtual nodes per member.
    pub vnodes: u32,
    /// The member list (advertised addresses).
    pub nodes: Vec<String>,
}

impl RingSpec {
    /// A spec over `nodes` with the default seed and vnode count.
    pub fn new(nodes: Vec<String>) -> Self {
        RingSpec {
            seed: DEFAULT_RING_SEED,
            vnodes: DEFAULT_VNODES,
            nodes,
        }
    }
}

/// What one node reported while a membership change was applied.
#[derive(Clone, Debug)]
pub struct NodeAck {
    /// The contact address the `RingSet` was sent to.
    pub addr: String,
    /// Epoch the node acknowledged.
    pub epoch: u64,
    /// Sessions it migrated away while adopting.
    pub migrated: u64,
}

/// Outcome of [`apply_membership`].
#[derive(Clone, Debug)]
pub struct RingChangeReport {
    /// The epoch the new ring was installed under.
    pub epoch: u64,
    /// Per-node acknowledgements, in the order the change was applied.
    pub acks: Vec<NodeAck>,
}

impl RingChangeReport {
    /// Total sessions migrated across all nodes.
    pub fn migrated(&self) -> u64 {
        self.acks.iter().map(|a| a.migrated).sum()
    }
}

/// Apply a membership change across a cluster: tell every node in
/// `contacts` (the union of old and new members) to adopt
/// `spec`, **losers first** — leavers drain before survivors start
/// claiming their keys, and joiners (nodes that were never clustered)
/// are told last, after their state has been pushed to them. The next
/// epoch is one past the highest any contact reports.
pub fn apply_membership(
    contacts: &[String],
    spec: &RingSpec,
) -> Result<RingChangeReport, ClientError> {
    assert!(!contacts.is_empty(), "membership change needs contacts");
    // Learn every contact's current epoch (and weed out duplicates).
    let mut seen: Vec<String> = Vec::new();
    let mut infos: Vec<(String, u64)> = Vec::new();
    for addr in contacts {
        if seen.contains(addr) {
            continue;
        }
        seen.push(addr.clone());
        let mut c = Client::connect(addr.as_str())?;
        c.set_timeout(Some(PEER_TIMEOUT))?;
        match c.call(&Request::RingGet)? {
            Response::RingInfo { epoch, .. } => infos.push((addr.clone(), epoch)),
            _ => return Err(ClientError::Unexpected("want RingInfo")),
        }
    }
    let epoch = infos.iter().map(|(_, e)| *e).max().unwrap_or(0) + 1;
    // Losers first: contacts leaving the member set, then standing
    // members (clustered before), then joiners (epoch 0) last.
    let class = |addr: &String, node_epoch: u64| -> u8 {
        if !spec.nodes.contains(addr) {
            0 // leaving: must drain before anyone claims its keys
        } else if node_epoch > 0 {
            1 // standing member: may shed keys to joiners
        } else {
            2 // joiner: told last, after its state arrived
        }
    };
    let mut ordered = infos;
    ordered.sort_by_key(|(addr, e)| class(addr, *e));
    let set = Request::RingSet {
        epoch,
        seed: spec.seed,
        vnodes: spec.vnodes,
        nodes: spec.nodes.clone(),
    };
    let mut acks = Vec::with_capacity(ordered.len());
    for (addr, _) in &ordered {
        let mut c = Client::connect(addr.as_str())?;
        // Migration sweeps ship whole profiles; give them room.
        c.set_timeout(Some(Duration::from_secs(60)))?;
        match c.call(&set)? {
            Response::RingAck {
                epoch: acked,
                migrated,
            } => acks.push(NodeAck {
                addr: addr.clone(),
                epoch: acked,
                migrated,
            }),
            _ => return Err(ClientError::Unexpected("want RingAck")),
        }
    }
    Ok(RingChangeReport { epoch, acks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::SampleBatch;

    fn store_with(names: &[&str]) -> ShardedSessionStore {
        let s = ShardedSessionStore::new(1 << 20, 2);
        for n in names {
            s.submit(
                n,
                SampleBatch {
                    total_refs: 10,
                    sample_period: 1,
                    line_bytes: 64,
                    ..SampleBatch::default()
                },
            )
            .unwrap();
        }
        s
    }

    fn clustered(me: &str, members: &[&str]) -> ClusterState {
        let cs = ClusterState::new();
        cs.set_self_addr(me.to_string());
        cs.install_ring(
            1,
            Ring::new(1, 64, members.iter().map(|s| s.to_string()).collect()),
        )
        .unwrap();
        cs
    }

    #[test]
    fn unclustered_state_is_always_local() {
        let cs = ClusterState::new();
        cs.set_self_addr("a:1".into());
        let store = store_with(&[]);
        assert!(!cs.is_clustered());
        assert_eq!(cs.route("anything", false, &store), Route::Local);
        assert_eq!(cs.route("anything", true, &store), Route::Local);
        assert_eq!(cs.snapshot().0, 0);
    }

    #[test]
    fn live_sessions_are_sticky_regardless_of_ownership() {
        let cs = clustered("a:1", &["a:1", "b:2"]);
        let ring = cs.snapshot().1.unwrap();
        // Find a session owned by b — it must still run locally while
        // the local store holds it.
        let foreign = (0..500)
            .map(|i| format!("s{i}"))
            .find(|s| ring.owner(s) == Some("b:2"))
            .unwrap();
        let store = store_with(&[foreign.as_str()]);
        assert_eq!(cs.route(&foreign, false, &store), Route::Local);
        // Once it is gone (no tombstone — e.g. evicted), ownership wins.
        let empty = store_with(&[]);
        assert_eq!(
            cs.route(&foreign, false, &empty),
            Route::Forward("b:2".into())
        );
        assert_eq!(
            cs.route(&foreign, true, &empty),
            Route::Forward("b:2".into()),
            "submits follow ownership too"
        );
    }

    #[test]
    fn tombstones_outrank_ring_ownership() {
        let cs = clustered("a:1", &["a:1", "b:2"]);
        let ring = cs.snapshot().1.unwrap();
        let mine = (0..500)
            .map(|i| format!("s{i}"))
            .find(|s| ring.owner(s) == Some("a:1"))
            .unwrap();
        let store = store_with(&[mine.as_str()]);
        let v = store.version_of(&mine).unwrap();
        assert!(store.remove_migrated(&mine, v, "c:3"));
        assert_eq!(
            cs.route(&mine, false, &store),
            Route::Forward("c:3".into()),
            "a tombstone forwards even when the ring says this node owns it"
        );
    }

    #[test]
    fn handoff_window_forwards_reads_to_previous_owner() {
        let cs = ClusterState::new();
        cs.set_self_addr("a:1".into());
        let old = Ring::new(1, 64, vec!["b:2".into(), "c:3".into()]);
        cs.install_ring(1, old.clone()).unwrap();
        let new = Ring::new(1, 64, vec!["a:1".into(), "b:2".into(), "c:3".into()]);
        cs.install_ring(2, new.clone()).unwrap();
        let store = store_with(&[]);
        // A session this node now owns but has not received yet: reads
        // chase the previous owner; submits are born here.
        let gained = (0..1000)
            .map(|i| format!("s{i}"))
            .find(|s| new.owner(s) == Some("a:1"))
            .unwrap();
        let prev_owner = old.owner(&gained).unwrap().to_string();
        assert_eq!(
            cs.route(&gained, false, &store),
            Route::Forward(prev_owner.clone())
        );
        assert_eq!(cs.route(&gained, true, &store), Route::Local);
        assert_eq!(cs.pull_candidate(&gained), Some(prev_owner));
    }

    #[test]
    fn install_ring_rejects_stale_epochs() {
        let cs = clustered("a:1", &["a:1"]);
        let r = Ring::new(2, 64, vec!["a:1".into(), "b:2".into()]);
        assert_eq!(cs.install_ring(1, r.clone()), Err(1), "same epoch: stale");
        assert_eq!(cs.install_ring(0, r.clone()), Err(1));
        assert!(cs.install_ring(5, r).is_ok());
        assert_eq!(cs.snapshot().0, 5);
    }
}
