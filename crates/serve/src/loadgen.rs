//! Open-loop, coordinated-omission-safe load generator for the serve
//! daemon (`repf load`, `serve_bench`'s `sustained_load` scenario).
//!
//! ## Why open-loop
//!
//! A closed-loop client (send, wait, send) slows *itself* down when the
//! server stalls: the stalled seconds vanish from the latency record
//! because no requests were outstanding while the client politely
//! waited — the classic *coordinated omission* trap. This generator
//! instead fixes an arrival schedule up front (`generate_ops`): op `i`
//! is *intended* to start at `t0 + i/rate`, no matter how the server is
//! doing. Every response is then accounted twice:
//!
//! * **intended latency** — completion minus the *scheduled* start, the
//!   number a user arriving at that moment would experience;
//! * **service latency** — completion minus the instant the bytes
//!   actually left, the number a coordinated-omission-blind harness
//!   would (mis)report.
//!
//! When the server keeps up the two agree; when it stalls, the intended
//! histogram keeps charging while requests queue behind the stall, and
//! the gap between the two p99s *is* the coordinated omission a
//! closed-loop harness would have hidden. The headline numbers always
//! come from the intended histogram.
//!
//! ## Workload shape
//!
//! Session popularity is zipfian ([`ZipfGen`], YCSB-style: rank `i` is
//! drawn with weight `1/(i+1)^s`), op kinds follow a YCSB-like mix
//! ([`OpMix`]), and everything derives from one splitmix64 stream
//! ([`ReplayRng`]) — equal seeds give bit-identical op sequences
//! (asserted by `tests/loadgen.rs`), so a run is reproducible from its
//! `(seed, mix, rate, duration)` tuple alone.
//!
//! The driver herd is deliberately small: `drivers` paced connections
//! carry the schedule (each with up to `pipeline` requests in flight)
//! while `conns - drivers` extra connections sit parked, so "10k open
//! connections" costs file descriptors, not 10k threads — matching how
//! the epoll server itself treats idle sockets as nearly free.

use crate::metrics::LogHisto;
use crate::proto::{self, FrameReadError, Request, Response, SampleBatch, Target};
use crate::replay::ReplayRng;
use crate::ring::{Ring, DEFAULT_RING_SEED, DEFAULT_VNODES};
use repf_metrics::json::Json;
use repf_sampling::{ReuseSample, StrideSample};
use repf_trace::{AccessKind, Pc};
use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// YCSB-like op mixes over the serve protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpMix {
    /// 50% submit / 40% MRC query / 10% per-PC MRC query — ingest-bound.
    SubmitHeavy,
    /// 5% submit / 80% MRC query / 15% per-PC MRC query — read-mostly.
    QueryHeavy,
    /// 100% per-PC MRC sweeps over a 16-point size ladder — the most
    /// expensive read path, every op walks a full curve.
    Scan,
    /// The query-heavy mix polluted by a 10% stream of one-shot submits
    /// to never-queried `churn-c{i}` sessions — the cache-pollution
    /// workload the store-policy comparison is built on: under a tight
    /// byte budget an LRU store lets the churn evict the zipf-hot
    /// working set, an admission-filtered store refuses it.
    ScanChurn,
}

impl OpMix {
    /// CLI / JSON name.
    pub fn as_str(&self) -> &'static str {
        match self {
            OpMix::SubmitHeavy => "submit-heavy",
            OpMix::QueryHeavy => "query-heavy",
            OpMix::Scan => "scan",
            OpMix::ScanChurn => "scan-churn",
        }
    }

    /// Every mix, for sweeps.
    pub const ALL: [OpMix; 4] = [
        OpMix::SubmitHeavy,
        OpMix::QueryHeavy,
        OpMix::Scan,
        OpMix::ScanChurn,
    ];
}

impl std::str::FromStr for OpMix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "submit-heavy" => Ok(OpMix::SubmitHeavy),
            "query-heavy" => Ok(OpMix::QueryHeavy),
            "scan" => Ok(OpMix::Scan),
            "scan-churn" => Ok(OpMix::ScanChurn),
            other => Err(format!(
                "unknown mix '{other}' (submit-heavy|query-heavy|scan|scan-churn)"
            )),
        }
    }
}

impl std::fmt::Display for OpMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one generated op does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Submit a small deterministic sample batch to the session.
    Submit,
    /// Whole-session MRC over the standard 6-point ladder.
    Mrc,
    /// Per-PC MRC sweep over the 16-point scan ladder.
    PcMrc {
        /// The delinquent PC queried.
        pc: u32,
    },
    /// One-shot submit to a unique `churn-c{id}` session nothing ever
    /// queries again — pure pollution pressure on the session store.
    ChurnSubmit {
        /// Unique churn id (the op's schedule index, so names never
        /// repeat within a run).
        id: u32,
    },
}

/// One scheduled operation — a pure function of `(LoadConfig, index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    /// Intended start, microseconds after the run's `t0`.
    pub offset_us: u64,
    /// Target session index (zipf-ranked: 0 is hottest).
    pub session: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// Per-op seed for deterministic payload materialization
    /// ([`request_for`]).
    pub op_seed: u64,
}

/// Load-run knobs.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// RNG seed; equal seeds give bit-identical op sequences.
    pub seed: u64,
    /// Op mix.
    pub mix: OpMix,
    /// Target arrival rate, ops/second (open-loop schedule).
    pub rate: f64,
    /// Scheduled run length (`rate * duration` ops total).
    pub duration: Duration,
    /// Open connections: `drivers` paced + the rest parked idle.
    pub conns: usize,
    /// Paced driver connections; 0 resolves to `min(conns, 8)`.
    pub drivers: usize,
    /// Max in-flight requests per driver. `1` recovers a closed-loop
    /// client (useful to *demonstrate* coordinated omission; see
    /// `tests/loadgen.rs`).
    pub pipeline: usize,
    /// Distinct sessions (`load-s0` .. `load-s{n-1}`), preloaded with
    /// one batch each before the clock starts.
    pub sessions: u32,
    /// Zipf exponent for session popularity (YCSB default 0.99).
    pub zipf_s: f64,
    /// Ring seed for cluster fan-out: must match the daemons' ring so
    /// every op lands on its session's owner (zero misdirected
    /// requests, the cross-node plan-cache numbers stay honest).
    pub ring_seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 0x10AD_5EED,
            mix: OpMix::QueryHeavy,
            rate: 1000.0,
            duration: Duration::from_secs(2),
            conns: 8,
            drivers: 0,
            pipeline: 32,
            sessions: 16,
            zipf_s: 0.99,
            ring_seed: DEFAULT_RING_SEED,
        }
    }
}

/// Seeded zipfian rank sampler: rank `i` (0-based) is drawn with weight
/// `1/(i+1)^s` via inverse CDF over the cumulative weights — no `rand`
/// dependency, bit-stable across runs for a fixed [`ReplayRng`] stream.
pub struct ZipfGen {
    cum: Vec<f64>,
}

impl ZipfGen {
    /// A sampler over `n` ranks with exponent `s` (`n` ≥ 1).
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        let mut cum = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / f64::from(i + 1).powf(s);
            cum.push(total);
        }
        ZipfGen { cum }
    }

    /// Draw one rank in `0..n`.
    pub fn draw(&self, rng: &mut ReplayRng) -> u32 {
        // 53 uniform bits → f64 in [0, 1): the standard bit-exact
        // mapping, so the draw sequence is a pure function of the seed.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        let target = u * self.cum[self.cum.len() - 1];
        let idx = self.cum.partition_point(|&c| c <= target);
        idx.min(self.cum.len() - 1) as u32
    }
}

/// The delinquent PCs the load batches populate (mirrors the replay
/// generator: PC 100 is the far-reuse strided miss, the others hit).
const LOAD_PCS: [u32; 3] = [100, 200, 300];

/// 6-point MRC ladder for [`OpKind::Mrc`] queries.
const MRC_SIZES: [u64; 6] = [
    32 << 10,
    128 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    8 << 20,
];

/// Name of load session `i`.
pub fn session_name(i: u32) -> String {
    format!("load-s{i}")
}

/// Name of one-shot churn session `id` ([`OpKind::ChurnSubmit`]).
pub fn churn_name(id: u32) -> String {
    format!("churn-c{id}")
}

/// The session an op addresses on the wire — the zipf-ranked load
/// session for ordinary ops, the unique churn session for
/// [`OpKind::ChurnSubmit`]. Routing (ring ownership) must use this, not
/// `session_name(op.session)`, or churn ops land on the wrong node.
pub fn op_session_name(op: &Op) -> String {
    match op.kind {
        OpKind::ChurnSubmit { id } => churn_name(id),
        _ => session_name(op.session),
    }
}

/// The 16-point size ladder a [`OpKind::PcMrc`] scan sweeps (1–16 MiB).
pub fn scan_sizes() -> Vec<u64> {
    (1..=16u64).map(|i| i << 20).collect()
}

/// The full arrival schedule: a pure function of `cfg` (same seed ⇒
/// bit-identical `Vec<Op>`; see `tests/loadgen.rs`).
pub fn generate_ops(cfg: &LoadConfig) -> Vec<Op> {
    assert!(cfg.rate > 0.0, "rate must be positive");
    let mut rng = ReplayRng::new(cfg.seed);
    let zipf = ZipfGen::new(cfg.sessions.max(1), cfg.zipf_s);
    let total = (cfg.rate * cfg.duration.as_secs_f64()).ceil().max(1.0) as u64;
    let mut ops = Vec::with_capacity(total as usize);
    for i in 0..total {
        let offset_us = ((i as f64) * 1_000_000.0 / cfg.rate) as u64;
        let session = zipf.draw(&mut rng);
        let roll = rng.below(100);
        let kind = match cfg.mix {
            OpMix::SubmitHeavy => {
                if roll < 50 {
                    OpKind::Submit
                } else if roll < 90 {
                    OpKind::Mrc
                } else {
                    OpKind::PcMrc {
                        pc: LOAD_PCS[rng.below(LOAD_PCS.len() as u64) as usize],
                    }
                }
            }
            OpMix::QueryHeavy => {
                if roll < 5 {
                    OpKind::Submit
                } else if roll < 85 {
                    OpKind::Mrc
                } else {
                    OpKind::PcMrc {
                        pc: LOAD_PCS[rng.below(LOAD_PCS.len() as u64) as usize],
                    }
                }
            }
            OpMix::Scan => OpKind::PcMrc {
                pc: LOAD_PCS[rng.below(LOAD_PCS.len() as u64) as usize],
            },
            OpMix::ScanChurn => {
                // Deliberately no plain `Submit` arm: the zipf-hot
                // working set is preloaded once and never grows, so the
                // only byte pressure on the store is the churn stream —
                // a hot session a policy evicts is lost for the rest of
                // the run, exactly the pollution cost the store-policy
                // A/B measures.
                if roll < 10 {
                    OpKind::ChurnSubmit { id: i as u32 }
                } else if roll < 85 {
                    OpKind::Mrc
                } else {
                    OpKind::PcMrc {
                        pc: LOAD_PCS[rng.below(LOAD_PCS.len() as u64) as usize],
                    }
                }
            }
        };
        let op_seed = rng.next_u64();
        ops.push(Op {
            offset_us,
            session,
            kind,
            op_seed,
        });
    }
    ops
}

/// A small deterministic sample batch, materialized from a per-op seed
/// (the submit payload; mirrors the replay generator's shape at 1/4 the
/// sample count so ingest stays cheap relative to queries). `session`
/// is the zipf rank the batch belongs to: a quarter of the non-far
/// samples carry a rank-keyed LLC-scale reuse distance (~2–8 MB
/// spans), so different sessions saturate at different shared-cache
/// sizes. Without that component every load session is bimodal —
/// always-hit short reuse plus always-miss far reuse — and
/// co-run/placement questions over load sessions degenerate to ties.
fn load_batch(seed: u64, samples: u64, session: u32) -> SampleBatch {
    let mut rng = ReplayRng::new(seed);
    let mut b = SampleBatch {
        total_refs: 40_000 + rng.below(20_000),
        sample_period: 1009,
        line_bytes: 64,
        ..SampleBatch::default()
    };
    for i in 0..samples {
        let pc = LOAD_PCS[rng.below(LOAD_PCS.len() as u64) as usize];
        let distance = if pc == 100 {
            400_000 + rng.below(600_000)
        } else if rng.below(4) == 0 {
            30_000 + 7_000 * u64::from(session) + rng.below(3_000)
        } else {
            1 + rng.below(48)
        };
        b.reuse.push(ReuseSample {
            start_pc: Pc(pc),
            start_kind: AccessKind::Load,
            end_pc: Pc(pc),
            end_kind: AccessKind::Load,
            distance,
            start_index: i * 4000 + rng.below(1000),
        });
        if rng.below(3) == 0 {
            b.strides.push(StrideSample {
                pc: Pc(pc),
                kind: AccessKind::Load,
                stride: if pc == 100 { 64 } else { 8 },
                recurrence: 6 + rng.below(10),
            });
        }
    }
    b
}

/// Materialize the wire request for one op — pure, so the full request
/// trace is reproducible from the config alone.
pub fn request_for(op: &Op) -> Request {
    let session = op_session_name(op);
    match op.kind {
        OpKind::Submit => Request::Submit {
            session,
            batch: load_batch(op.op_seed, 16, op.session),
        },
        // Churn one-shots carry 3x the ordinary submit payload: scan
        // pollution is a few large never-reused footprints, not many
        // tiny ones, and each arrival has to be big relative to the
        // store's slack for admission to be the thing that matters.
        OpKind::ChurnSubmit { .. } => Request::Submit {
            session,
            batch: load_batch(op.op_seed, 48, op.session),
        },
        OpKind::Mrc => Request::QueryMrc {
            target: Target::Session(session),
            sizes_bytes: MRC_SIZES.to_vec(),
        },
        OpKind::PcMrc { pc } => Request::QueryPcMrc {
            target: Target::Session(session),
            pc,
            sizes_bytes: scan_sizes(),
        },
    }
}

/// The request that preloads session `i` before the clock starts (so
/// queries never race the first submit into `UnknownSession`).
pub fn preload_request(cfg: &LoadConfig, i: u32) -> Request {
    Request::Submit {
        session: session_name(i),
        batch: load_batch(cfg.seed.wrapping_add(u64::from(i) + 1), 60, i),
    }
}

/// What a load run measured.
pub struct LoadReport {
    /// The config that produced it.
    pub cfg: LoadConfig,
    /// Target nodes the run fanned out over.
    pub nodes: usize,
    /// Connections actually opened (drivers + parked; may fall short of
    /// `cfg.conns` if the OS ran out of descriptors).
    pub conns_open: usize,
    /// Resolved driver count (across all nodes).
    pub drivers: usize,
    /// Requests put on the wire.
    pub sent: u64,
    /// Responses matching their request kind.
    pub completed: u64,
    /// `Busy` responses (overload shedding, not an error).
    pub busy: u64,
    /// `UnknownSession` answers to query ops: the session existed at
    /// preload but the store has since evicted it. A *session-store
    /// miss*, not a client error — the store-policy comparison is built
    /// on this count.
    pub unknown: u64,
    /// Query ops (MRC / per-PC MRC) answered from a live session.
    pub query_hits: u64,
    /// Everything wrong: server errors, kind mismatches, transport or
    /// framing failures, responses never received.
    pub errors: u64,
    /// `t0` → last response, across all drivers.
    pub wall: Duration,
    /// Latency from *intended* start (the coordinated-omission-safe
    /// headline).
    pub intended: LogHisto,
    /// Latency from actual send (what a CO-blind harness would report).
    pub service: LogHisto,
    /// Worst pacing slip: how late a send left relative to its schedule.
    pub max_send_lag_us: u64,
    /// Server-side counter deltas over the run (post minus pre, summed
    /// across nodes), sampled via `stats` right after preload and again
    /// after the last driver joins. `None` if either sample failed.
    pub server: Option<ServerStatsDelta>,
}

/// Server-side counters the load harness snapshots around a run, so
/// hit-ratio and eviction comparisons don't require scraping `stats`
/// output by hand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsDelta {
    /// `sessions.evictions` delta.
    pub evictions: u64,
    /// `model_cache.hits` delta.
    pub model_cache_hits: u64,
    /// `model_cache.misses` delta.
    pub model_cache_misses: u64,
    /// `store.admission.accepted` delta (0 under the LRU policy).
    pub admission_accepted: u64,
    /// `store.admission.rejected` delta (0 under the LRU policy).
    pub admission_rejected: u64,
}

/// One absolute `stats` snapshot summed across all nodes. Deltas of two
/// of these bracket a run.
fn sample_server_counters(addrs: &[String]) -> Option<ServerStatsDelta> {
    let mut acc = ServerStatsDelta::default();
    for addr in addrs {
        let mut c = crate::client::Client::connect(addr.as_str()).ok()?;
        c.set_timeout(Some(Duration::from_secs(10))).ok()?;
        let mut tries = 0;
        let pairs = loop {
            match c.stats() {
                Ok(p) => break p,
                Err(crate::client::ClientError::Busy) if tries < 50 => {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => return None,
            }
        };
        for (k, v) in pairs {
            let v = v as u64;
            match k.as_str() {
                "sessions.evictions" => acc.evictions += v,
                "model_cache.hits" => acc.model_cache_hits += v,
                "model_cache.misses" => acc.model_cache_misses += v,
                "store.admission.accepted" => acc.admission_accepted += v,
                "store.admission.rejected" => acc.admission_rejected += v,
                _ => {}
            }
        }
    }
    Some(acc)
}

impl ServerStatsDelta {
    fn delta(post: ServerStatsDelta, pre: ServerStatsDelta) -> ServerStatsDelta {
        ServerStatsDelta {
            evictions: post.evictions.saturating_sub(pre.evictions),
            model_cache_hits: post.model_cache_hits.saturating_sub(pre.model_cache_hits),
            model_cache_misses: post
                .model_cache_misses
                .saturating_sub(pre.model_cache_misses),
            admission_accepted: post
                .admission_accepted
                .saturating_sub(pre.admission_accepted),
            admission_rejected: post
                .admission_rejected
                .saturating_sub(pre.admission_rejected),
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("sessions_evictions", Json::Num(self.evictions as f64)),
            (
                "model_cache_hits",
                Json::Num(self.model_cache_hits as f64),
            ),
            (
                "model_cache_misses",
                Json::Num(self.model_cache_misses as f64),
            ),
            (
                "admission_accepted",
                Json::Num(self.admission_accepted as f64),
            ),
            (
                "admission_rejected",
                Json::Num(self.admission_rejected as f64),
            ),
        ])
    }
}

impl LoadReport {
    /// Completed ops per wall second.
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of query ops answered from a live session:
    /// `query_hits / (query_hits + unknown)`. `None` when the run
    /// issued no queries.
    pub fn session_hit_ratio(&self) -> Option<f64> {
        let total = self.query_hits + self.unknown;
        if total > 0 {
            Some(self.query_hits as f64 / total as f64)
        } else {
            None
        }
    }

    fn histo_json(h: &LogHisto) -> Json {
        Json::obj([
            ("count", Json::Num(h.count() as f64)),
            ("mean_us", Json::Num(h.mean_us())),
            ("p50_us", Json::Num(h.quantile_us(0.50))),
            ("p99_us", Json::Num(h.quantile_us(0.99))),
            ("p999_us", Json::Num(h.quantile_us(0.999))),
            ("max_us", Json::Num(h.max_us() as f64)),
        ])
    }

    /// The machine-readable report (`repf load` prints this; the bench
    /// harness embeds it in `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("mix", Json::str(self.cfg.mix.as_str())),
            ("seed", Json::Num(self.cfg.seed as f64)),
            ("target_rate", Json::Num(self.cfg.rate)),
            (
                "duration_secs",
                Json::Num(self.cfg.duration.as_secs_f64()),
            ),
            ("nodes", Json::Num(self.nodes as f64)),
            ("conns", Json::Num(self.conns_open as f64)),
            ("drivers", Json::Num(self.drivers as f64)),
            ("pipeline", Json::Num(self.cfg.pipeline as f64)),
            ("sessions", Json::Num(f64::from(self.cfg.sessions))),
            ("zipf_s", Json::Num(self.cfg.zipf_s)),
            ("sent", Json::Num(self.sent as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("busy", Json::Num(self.busy as f64)),
            ("unknown", Json::Num(self.unknown as f64)),
            ("query_hits", Json::Num(self.query_hits as f64)),
            (
                "session_hit_ratio",
                self.session_hit_ratio().map_or(Json::Null, Json::Num),
            ),
            ("errors", Json::Num(self.errors as f64)),
            ("achieved_rate", Json::Num(self.achieved_rate())),
            ("max_send_lag_us", Json::Num(self.max_send_lag_us as f64)),
            (
                "server",
                self.server.map_or(Json::Null, ServerStatsDelta::to_json),
            ),
            ("intended", Self::histo_json(&self.intended)),
            ("service", Self::histo_json(&self.service)),
        ])
    }
}

/// A pre-encoded scheduled op, ready for the wire.
struct EncodedOp {
    offset_us: u64,
    kind: OpKind,
    frame: Vec<u8>,
}

/// In-flight bookkeeping for one sent request.
struct Stamp {
    kind: OpKind,
    offset_us: u64,
    sent_at: Instant,
}

/// Writer/reader shared state for one driver connection.
struct DriverState {
    window: VecDeque<Stamp>,
    sent: u64,
    done_writing: bool,
    dead: bool,
}

struct DriverShared {
    m: Mutex<DriverState>,
    cv: Condvar,
}

/// What one driver measured.
#[derive(Default)]
struct DriverOut {
    sent: u64,
    completed: u64,
    busy: u64,
    unknown: u64,
    query_hits: u64,
    errors: u64,
    intended: LogHisto,
    service: LogHisto,
    max_lag_us: u64,
    last_done: Option<Instant>,
}

/// Consecutive 5-second read timeouts before a driver declares the
/// server hung and abandons its window.
const READER_MAX_STALLS: u32 = 3;

fn reader_loop(
    mut rd: TcpStream,
    shared: &DriverShared,
    t0: Instant,
) -> DriverOut {
    let mut out = DriverOut::default();
    let mut received = 0u64;
    let mut stalls = 0u32;
    loop {
        {
            let st = shared.m.lock().expect("driver state");
            if (st.done_writing && received == st.sent)
                || (st.dead && st.window.is_empty())
            {
                break;
            }
        }
        match proto::read_frame(&mut rd) {
            Ok(Some(body)) => {
                stalls = 0;
                let now = Instant::now();
                let stamp = {
                    let mut st = shared.m.lock().expect("driver state");
                    let s = st.window.pop_front();
                    if s.is_some() {
                        shared.cv.notify_all();
                    }
                    s
                };
                let Some(stamp) = stamp else {
                    // A response with nothing outstanding: the stream
                    // is unsynchronized; stop trusting it.
                    out.errors += 1;
                    break;
                };
                received += 1;
                out.last_done = Some(now);
                let ok = match (stamp.kind, Response::decode(&body)) {
                    (
                        OpKind::Submit | OpKind::ChurnSubmit { .. },
                        Ok(Response::Accepted { .. }),
                    ) => true,
                    (OpKind::Mrc, Ok(Response::Mrc { .. }))
                    | (OpKind::PcMrc { .. }, Ok(Response::PcMrc { .. })) => {
                        out.query_hits += 1;
                        true
                    }
                    // A query hitting an evicted session is a session-
                    // store miss, not a client error: the store's
                    // eviction/admission policy decided that session
                    // was not worth keeping.
                    (
                        OpKind::Mrc | OpKind::PcMrc { .. },
                        Ok(Response::Error {
                            code: proto::ErrorCode::UnknownSession,
                            ..
                        }),
                    ) => {
                        out.unknown += 1;
                        false
                    }
                    (_, Ok(Response::Busy)) => {
                        out.busy += 1;
                        false
                    }
                    _ => {
                        out.errors += 1;
                        false
                    }
                };
                if ok {
                    out.completed += 1;
                    let done_us = now.duration_since(t0).as_micros() as u64;
                    out.intended
                        .record_us(done_us.saturating_sub(stamp.offset_us));
                    out.service
                        .record_us(now.duration_since(stamp.sent_at).as_micros() as u64);
                }
            }
            Ok(None) => break, // server closed
            Err(FrameReadError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                stalls += 1;
                if stalls >= READER_MAX_STALLS {
                    break;
                }
            }
            Err(_) => {
                out.errors += 1;
                break;
            }
        }
    }
    // Whatever is still outstanding was never answered.
    let mut st = shared.m.lock().expect("driver state");
    out.errors += st.window.len() as u64;
    st.window.clear();
    st.dead = true;
    drop(st);
    shared.cv.notify_all();
    out
}

fn run_driver(
    stream: TcpStream,
    rd: TcpStream,
    pipeline: usize,
    t0: Instant,
    ops: Vec<EncodedOp>,
) -> std::io::Result<DriverOut> {
    let pipeline = pipeline.max(1);
    let shared = Arc::new(DriverShared {
        m: Mutex::new(DriverState {
            window: VecDeque::new(),
            sent: 0,
            done_writing: false,
            dead: false,
        }),
        cv: Condvar::new(),
    });
    rd.set_read_timeout(Some(Duration::from_secs(5)))?;
    let rshared = Arc::clone(&shared);
    let reader = std::thread::Builder::new()
        .name("repf-load-rd".into())
        .spawn(move || reader_loop(rd, &rshared, t0))?;

    let mut wr = stream;
    let mut max_lag_us = 0u64;
    for op in &ops {
        let target = t0 + Duration::from_micros(op.offset_us);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        // Open-loop with a bounded window: when the pipeline is full we
        // *wait* (the schedule keeps charging — that lateness is exactly
        // what the intended histogram records), we never skip ops.
        {
            let mut st = shared.m.lock().expect("driver state");
            while st.window.len() >= pipeline && !st.dead {
                st = shared.cv.wait(st).expect("driver state");
            }
            if st.dead {
                break;
            }
            let sent_at = Instant::now();
            max_lag_us = max_lag_us
                .max(sent_at.saturating_duration_since(target).as_micros() as u64);
            st.window.push_back(Stamp {
                kind: op.kind,
                offset_us: op.offset_us,
                sent_at,
            });
            st.sent += 1;
        }
        if wr.write_all(&op.frame).is_err() {
            let mut st = shared.m.lock().expect("driver state");
            st.dead = true;
            drop(st);
            shared.cv.notify_all();
            break;
        }
    }
    let sent = {
        let mut st = shared.m.lock().expect("driver state");
        st.done_writing = true;
        st.sent
    };
    shared.cv.notify_all();
    let mut out = reader.join().expect("load reader panicked");
    out.sent = sent;
    out.max_lag_us = max_lag_us;
    Ok(out)
}

/// Descriptors the preflight reserves beyond the herd itself: the
/// preload clients, stdio, and whatever the allocator/runtime holds.
pub const FD_RESERVE: u64 = 64;

/// The descriptor budget one run needs: the full connection herd, one
/// extra descriptor per driver (the reader half is a `try_clone`), and
/// a fixed reserve.
pub fn fd_budget(conns: usize, total_drivers: usize) -> u64 {
    conns.max(total_drivers) as u64 + total_drivers as u64 + FD_RESERVE
}

/// Fail-fast check that `RLIMIT_NOFILE` covers [`fd_budget`] — after a
/// best-effort raise. A herd that half-opens because the OS ran out of
/// descriptors mid-run produces silently wrong latency numbers; better
/// to stop up front and say exactly what `ulimit -n` value is needed.
#[cfg(target_os = "linux")]
pub fn preflight_fd_budget(conns: usize, total_drivers: usize) -> std::io::Result<()> {
    let need = fd_budget(conns, total_drivers);
    let have = crate::poll::raise_nofile_limit(need);
    if have < need {
        return Err(std::io::Error::other(format!(
            "fd budget: need {need} descriptors ({} connections + {total_drivers} driver reader \
             clones + {FD_RESERVE} reserve) but RLIMIT_NOFILE allows {have}; \
             raise it with `ulimit -n {need}` or lower --conns",
            conns.max(total_drivers),
        )));
    }
    Ok(())
}

/// Portable no-op: platforms without `RLIMIT_NOFILE` wrappers find out
/// the hard way, as before.
#[cfg(not(target_os = "linux"))]
pub fn preflight_fd_budget(_conns: usize, _total_drivers: usize) -> std::io::Result<()> {
    Ok(())
}

/// Run one open-loop load against one or more live servers.
///
/// With a single address this is the classic single-node run. With
/// several, the generator builds the same consistent-hash ring the
/// daemons use (`cfg.ring_seed`) and fans out: each node gets its own
/// driver set, every op is sent to its session's owner, and sessions
/// are preloaded through their owners — so a correctly-seeded run never
/// relies on peer forwarding and the fleet-wide plan-cache numbers
/// measure sharing, not misdirection.
///
/// Preloads every session, parks `conns - drivers` idle connections
/// (spread round-robin over the nodes), then paces the generated
/// schedule over the driver connections and merges their measurements.
pub fn run_load(addrs: &[String], cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    if addrs.is_empty() {
        return Err(std::io::Error::other("load needs at least one address"));
    }
    let nodes = addrs.len();
    let drivers_per_node = if cfg.drivers == 0 {
        cfg.conns.clamp(1, 8)
    } else {
        cfg.drivers.min(cfg.conns.max(1)).max(1)
    };
    let total_drivers = drivers_per_node * nodes;
    preflight_fd_budget(cfg.conns, total_drivers)?;

    let ring = Ring::new(cfg.ring_seed, DEFAULT_VNODES, addrs.to_vec());

    // Preload sessions on throwaway connections — through each
    // session's ring owner — so queries never see UnknownSession and no
    // session starts life on the wrong node.
    {
        let mut pre: Vec<crate::client::Client> = Vec::with_capacity(nodes);
        for addr in addrs {
            let mut c = crate::client::Client::connect(addr.as_str())
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            c.set_timeout(Some(Duration::from_secs(10)))
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            pre.push(c);
        }
        for s in 0..cfg.sessions {
            let owner = ring.owner_index(&session_name(s)).unwrap_or(0);
            let req = preload_request(cfg, s);
            let mut tries = 0;
            loop {
                match pre[owner].call(&req) {
                    Ok(_) => break,
                    Err(crate::client::ClientError::Busy) if tries < 50 => {
                        tries += 1;
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => {
                        return Err(std::io::Error::other(format!(
                            "preload of load-s{s} failed: {e}"
                        )))
                    }
                }
            }
        }
    }

    // Bracket the run with server-side counter snapshots (best-effort:
    // a failed sample yields `server: null` in the report, never a
    // failed run).
    let pre_counters = sample_server_counters(addrs);

    // Driver connections first (they must exist) — including the reader
    // half's descriptor clone, so parking the herd can never starve a
    // driver of its fds — then the rest of the herd, stopping early if
    // the OS runs out of descriptors. Driver `d` talks to node
    // `d / drivers_per_node`.
    let mut driver_streams = Vec::with_capacity(total_drivers);
    for d in 0..total_drivers {
        let s = TcpStream::connect(addrs[d / drivers_per_node].as_str())?;
        s.set_nodelay(true).ok();
        let rd = s.try_clone()?;
        driver_streams.push((s, rd));
    }
    let mut idle: Vec<TcpStream> = Vec::new();
    for i in total_drivers..cfg.conns {
        match TcpStream::connect(addrs[i % nodes].as_str()) {
            Ok(s) => idle.push(s),
            Err(_) => break,
        }
    }
    let conns_open = total_drivers + idle.len();

    // Generate, route each op to its session's owner, round-robin over
    // that node's drivers, pre-encode (so encoding cost never perturbs
    // pacing).
    let ops = generate_ops(cfg);
    let mut per: Vec<Vec<EncodedOp>> = (0..total_drivers).map(|_| Vec::new()).collect();
    let mut next_on_node = vec![0usize; nodes];
    for op in &ops {
        let node = ring.owner_index(&op_session_name(op)).unwrap_or(0);
        let lane = node * drivers_per_node + next_on_node[node] % drivers_per_node;
        next_on_node[node] += 1;
        per[lane].push(EncodedOp {
            offset_us: op.offset_us,
            kind: op.kind,
            frame: request_for(op).encode(),
        });
    }

    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(total_drivers);
    for ((stream, rd), ops) in driver_streams.into_iter().zip(per) {
        let pipeline = cfg.pipeline;
        handles.push(
            std::thread::Builder::new()
                .name("repf-load-wr".into())
                .spawn(move || run_driver(stream, rd, pipeline, t0, ops))?,
        );
    }

    let mut report = LoadReport {
        cfg: cfg.clone(),
        nodes,
        conns_open,
        drivers: total_drivers,
        sent: 0,
        completed: 0,
        busy: 0,
        unknown: 0,
        query_hits: 0,
        errors: 0,
        wall: Duration::ZERO,
        intended: LogHisto::new(),
        service: LogHisto::new(),
        max_send_lag_us: 0,
        server: None,
    };
    let mut last_done: Option<Instant> = None;
    for h in handles {
        let out = h.join().expect("load driver panicked")?;
        report.sent += out.sent;
        report.completed += out.completed;
        report.busy += out.busy;
        report.unknown += out.unknown;
        report.query_hits += out.query_hits;
        report.errors += out.errors;
        report.intended.merge(&out.intended);
        report.service.merge(&out.service);
        report.max_send_lag_us = report.max_send_lag_us.max(out.max_lag_us);
        if let Some(t) = out.last_done {
            last_done = Some(last_done.map_or(t, |l| l.max(t)));
        }
    }
    report.wall = last_done.map_or(Duration::ZERO, |t| t.duration_since(t0));
    drop(idle);
    report.server = match (pre_counters, sample_server_counters(addrs)) {
        (Some(pre), Some(post)) => Some(ServerStatsDelta::delta(post, pre)),
        _ => None,
    };
    Ok(report)
}
