//! W-TinyLFU admission machinery for the session store: a 4-bit
//! count-min frequency sketch with periodic halving, a doorkeeper bloom
//! filter that absorbs one-hit wonders before they touch the sketch,
//! and a lock-free striped access buffer so read-path frequency
//! recording never takes a lock of its own (Ristretto/cacheD-style
//! pooled recording).
//!
//! Everything here is deterministic for a given access sequence: the
//! hash mixes are fixed splitmix64 finalizers, so the same trace always
//! produces the same sketch state — a requirement for the seeded
//! hit-ratio regression tests.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// splitmix64 finalizer — the repo's standard cheap 64-bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-row seeds: large odd constants so the four count-min rows probe
/// independent positions for the same key.
const ROW_SEEDS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
];

/// A count-min sketch of 4-bit saturating counters (4 rows, a
/// power-of-two number of counters per row, 16 counters packed per
/// `u64` word) with periodic halving: once the number of recorded
/// increments reaches the sample threshold, every counter is halved and
/// the increment count is halved with it, so the sketch tracks *recent*
/// popularity instead of all-time popularity.
pub struct FreqSketch {
    table: Vec<u64>,
    /// counters-per-row − 1 (power-of-two row width).
    mask: u64,
    words_per_row: usize,
    /// Increments recorded since the last halving.
    ops: u64,
    /// Halve when `ops` reaches this threshold.
    sample: u64,
    resets: u64,
}

/// Counter saturation: 4 bits.
const COUNTER_MAX: u64 = 15;

impl FreqSketch {
    /// A sketch with `counters` counters per row (rounded up to a power
    /// of two, minimum 16) and the conventional sample threshold of
    /// 10 × counters.
    pub fn new(counters: usize) -> Self {
        let c = counters.next_power_of_two().max(16);
        Self::with_sample(c, 10 * c as u64)
    }

    /// A sketch with an explicit halving threshold (tests use small
    /// ones to exercise aging without millions of increments).
    pub fn with_sample(counters: usize, sample: u64) -> Self {
        let c = counters.next_power_of_two().max(16);
        let words_per_row = c / 16;
        FreqSketch {
            table: vec![0u64; words_per_row * ROW_SEEDS.len()],
            mask: c as u64 - 1,
            words_per_row,
            ops: 0,
            sample: sample.max(1),
            resets: 0,
        }
    }

    #[inline]
    fn slot(&self, hash: u64, row: usize) -> (usize, u32) {
        let c = mix(hash ^ ROW_SEEDS[row]) & self.mask;
        let word = row * self.words_per_row + (c >> 4) as usize;
        let shift = ((c & 15) * 4) as u32;
        (word, shift)
    }

    /// Record one occurrence of `hash`. Returns `true` when this
    /// increment triggered a halving reset (the caller's doorkeeper
    /// must be cleared alongside).
    pub fn increment(&mut self, hash: u64) -> bool {
        let mut added = false;
        for row in 0..ROW_SEEDS.len() {
            let (word, shift) = self.slot(hash, row);
            let cur = (self.table[word] >> shift) & COUNTER_MAX;
            if cur < COUNTER_MAX {
                self.table[word] += 1u64 << shift;
                added = true;
            }
        }
        if added {
            self.ops += 1;
            if self.ops >= self.sample {
                self.halve();
                return true;
            }
        }
        false
    }

    /// The estimated occurrence count of `hash` (min over rows; never
    /// an under-count below the 4-bit saturation cap).
    pub fn estimate(&self, hash: u64) -> u32 {
        let mut est = COUNTER_MAX;
        for row in 0..ROW_SEEDS.len() {
            let (word, shift) = self.slot(hash, row);
            est = est.min((self.table[word] >> shift) & COUNTER_MAX);
        }
        est as u32
    }

    /// Halve every counter (aging). Shifting the packed word right by
    /// one moves each nibble's low bit into its neighbour; the mask
    /// clears those strays.
    fn halve(&mut self) {
        for w in &mut self.table {
            *w = (*w >> 1) & 0x7777_7777_7777_7777;
        }
        self.ops /= 2;
        self.resets += 1;
    }

    /// Halving resets performed over the sketch's lifetime.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Counters per row (the power-of-two row width).
    pub fn counters_per_row(&self) -> usize {
        (self.mask + 1) as usize
    }
}

/// A small bloom filter (two probes) in front of the sketch: the first
/// sighting of a key inside a sample window only marks the doorkeeper,
/// so one-hit wonders never consume sketch counters. Cleared on every
/// sketch halving.
pub struct Doorkeeper {
    bits: Vec<u64>,
    mask: u64,
}

impl Doorkeeper {
    /// A doorkeeper of `bits` bits (rounded up to a power of two,
    /// minimum 64).
    pub fn new(bits: usize) -> Self {
        let n = bits.next_power_of_two().max(64);
        Doorkeeper {
            bits: vec![0u64; n / 64],
            mask: n as u64 - 1,
        }
    }

    #[inline]
    fn probes(&self, hash: u64) -> (u64, u64) {
        (mix(hash) & self.mask, mix(hash ^ 0x5851_F42D_4C95_7F2D) & self.mask)
    }

    #[inline]
    fn bit(&self, b: u64) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Mark `hash`; returns whether it was already present.
    pub fn insert(&mut self, hash: u64) -> bool {
        let (a, b) = self.probes(hash);
        let present = self.bit(a) && self.bit(b);
        self.bits[(a >> 6) as usize] |= 1u64 << (a & 63);
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
        present
    }

    /// Whether `hash` is (probably) present.
    pub fn contains(&self, hash: u64) -> bool {
        let (a, b) = self.probes(hash);
        self.bit(a) && self.bit(b)
    }

    /// Forget everything (called on sketch halving).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    /// Filter size in bits (power of two).
    pub fn num_bits(&self) -> usize {
        (self.mask + 1) as usize
    }
}

/// The combined admission filter: doorkeeper + sketch, with the
/// counters the store surfaces through `Stats`.
pub struct TinyLfu {
    sketch: FreqSketch,
    door: Doorkeeper,
    door_hits: u64,
}

/// Default sketch width per shard: 4096 counters/row × 4 rows × 4 bits
/// = 8 KiB — generous for the session counts a shard's byte budget can
/// hold, negligible against the budget itself.
const DEFAULT_COUNTERS: usize = 4096;
/// Default doorkeeper: 16384 bits = 2 KiB.
const DEFAULT_DOOR_BITS: usize = 16384;

/// Budget scaling: one sketch counter per this many budget bytes, so
/// the sketch (counters × 4 rows × 4 bits = 2 bytes/counter) costs
/// ~0.1% of the shard budget it protects.
const BYTES_PER_COUNTER: usize = 2048;
/// Floor/ceiling for budget-derived sketch widths: tiny test budgets
/// still get a useful sketch, pathological budgets stay bounded
/// (2²² counters = 8 MiB of sketch).
const MIN_COUNTERS: usize = 1024;
const MAX_COUNTERS: usize = 1 << 22;

impl TinyLfu {
    /// A filter with the default per-shard sizing.
    pub fn new() -> Self {
        Self::with_params(DEFAULT_COUNTERS, 10 * DEFAULT_COUNTERS as u64, DEFAULT_DOOR_BITS)
    }

    /// A filter sized from the shard byte budget it guards: one sketch
    /// counter per [`BYTES_PER_COUNTER`] budget bytes and four
    /// doorkeeper bits per counter (the same 4:1 ratio as the
    /// defaults), clamped to `[MIN_COUNTERS, MAX_COUNTERS]`. A larger
    /// budget holds more sessions, so it gets a proportionally wider
    /// sketch — fewer collisions at the same ~0.1% memory overhead —
    /// while the admission rule itself (doorkeeper, estimate
    /// comparison, halving at 10× width) is unchanged.
    pub fn for_budget(budget_bytes: usize) -> Self {
        let c = (budget_bytes / BYTES_PER_COUNTER)
            .clamp(MIN_COUNTERS, MAX_COUNTERS)
            .next_power_of_two();
        Self::with_params(c, 10 * c as u64, 4 * c)
    }

    /// A filter with explicit sketch/doorkeeper sizing (tests).
    pub fn with_params(counters: usize, sample: u64, door_bits: usize) -> Self {
        TinyLfu {
            sketch: FreqSketch::with_sample(counters, sample),
            door: Doorkeeper::new(door_bits),
            door_hits: 0,
        }
    }

    /// Record one access. The first sighting inside a sample window is
    /// absorbed by the doorkeeper (counted in `doorkeeper_hits`);
    /// repeats feed the sketch. A sketch halving clears the doorkeeper.
    pub fn record(&mut self, hash: u64) {
        if self.door.insert(hash) {
            if self.sketch.increment(hash) {
                self.door.clear();
            }
        } else {
            self.door_hits += 1;
        }
    }

    /// The admission frequency of `hash`: sketch estimate plus one if
    /// the doorkeeper has seen it this window.
    pub fn frequency(&self, hash: u64) -> u32 {
        self.sketch.estimate(hash) + u32::from(self.door.contains(hash))
    }

    /// One-hit wonders absorbed by the doorkeeper (never reached the
    /// sketch).
    pub fn doorkeeper_hits(&self) -> u64 {
        self.door_hits
    }

    /// Sketch halving resets performed.
    pub fn sketch_resets(&self) -> u64 {
        self.resets()
    }

    /// Sketch counters per row.
    pub fn sketch_counters(&self) -> usize {
        self.sketch.counters_per_row()
    }

    /// Doorkeeper size in bits.
    pub fn doorkeeper_bits(&self) -> usize {
        self.door.num_bits()
    }

    fn resets(&self) -> u64 {
        self.sketch.resets()
    }
}

impl Default for TinyLfu {
    fn default() -> Self {
        Self::new()
    }
}

/// Capacity of a shard's striped access buffer.
const ACCESS_CAP: usize = 256;
/// A reader that lands on a multiple of this many pushes drains the
/// buffer under the shard lock it already holds — recording is batched,
/// never an extra lock acquisition.
const DRAIN_EVERY: usize = 64;

/// What a push tells the caller to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushOutcome {
    /// An unconsumed older access was overwritten (lossy ring — fine,
    /// the sketch is an approximation).
    pub dropped: bool,
    /// The caller should drain the buffer into the store while it holds
    /// the shard lock for its own lookup.
    pub should_drain: bool,
}

/// A fixed-size lock-free ring of pending access hashes: readers push
/// with two relaxed atomic ops and drain in batches under the shard
/// lock they already hold for the lookup itself. Overwrites are lossy
/// by design (Ristretto-style); zero is the empty sentinel, so a zero
/// hash is nudged to a fixed non-zero value.
pub struct AccessBuffer {
    slots: Box<[AtomicU64]>,
    head: AtomicUsize,
}

impl AccessBuffer {
    pub fn new() -> Self {
        AccessBuffer {
            slots: (0..ACCESS_CAP).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Record a pending access (lock-free, wait-free).
    pub fn push(&self, hash: u64) -> PushOutcome {
        let h = if hash == 0 { 0x9E37_79B9 } else { hash };
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let prev = self.slots[i % ACCESS_CAP].swap(h, Ordering::Release);
        PushOutcome {
            dropped: prev != 0,
            should_drain: (i + 1).is_multiple_of(DRAIN_EVERY),
        }
    }

    /// Consume every pending access, invoking `f` per hash. Concurrent
    /// pushes may land after a slot is consumed; they stay for the next
    /// drain. Returns how many accesses were consumed.
    pub fn drain(&self, mut f: impl FnMut(u64)) -> usize {
        let mut n = 0;
        for slot in self.slots.iter() {
            let v = slot.swap(0, Ordering::Acquire);
            if v != 0 {
                f(v);
                n += 1;
            }
        }
        n
    }
}

impl Default for AccessBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix(self.0)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Property: a count-min sketch can over-count (collisions) but
    /// never under-count below the 4-bit saturation cap, for any key
    /// set and any true counts, as long as no halving reset fired.
    #[test]
    fn sketch_never_undercounts_before_reset() {
        for seed in [1u64, 2, 3, 4, 5] {
            let mut rng = Rng(seed);
            // Huge sample threshold: no reset can fire in this test.
            let mut sk = FreqSketch::with_sample(1024, u64::MAX);
            let keys: Vec<u64> = (0..200).map(|_| rng.next()).collect();
            let counts: Vec<u64> = keys.iter().map(|_| 1 + rng.below(20)).collect();
            for (k, c) in keys.iter().zip(&counts) {
                for _ in 0..*c {
                    assert!(!sk.increment(*k), "no reset with u64::MAX sample");
                }
            }
            for (k, c) in keys.iter().zip(&counts) {
                let want = (*c).min(COUNTER_MAX) as u32;
                assert!(
                    sk.estimate(*k) >= want,
                    "seed {seed}: estimate {} under-counts true {} (cap {})",
                    sk.estimate(*k),
                    c,
                    want
                );
            }
            assert_eq!(sk.resets(), 0);
        }
    }

    /// Property: halving preserves relative order for counts ≥ 2 —
    /// floor(a/2) ≥ floor(b/2) whenever a ≥ b, so a hot key's estimate
    /// never drops below a colder key's purely from aging.
    #[test]
    fn halving_preserves_relative_order_for_counts_ge_2() {
        for seed in [7u64, 11, 13] {
            let mut rng = Rng(seed);
            let mut sk = FreqSketch::with_sample(2048, u64::MAX);
            let keys: Vec<u64> = (0..64).map(|_| rng.next()).collect();
            // Distinct-ish counts in [2, 15] so saturation doesn't
            // flatten the order we check.
            let counts: Vec<u64> = keys.iter().map(|_| 2 + rng.below(14)).collect();
            for (k, c) in keys.iter().zip(&counts) {
                for _ in 0..*c {
                    sk.increment(*k);
                }
            }
            let before: Vec<u32> = keys.iter().map(|k| sk.estimate(*k)).collect();
            sk.halve();
            assert_eq!(sk.resets(), 1);
            let after: Vec<u32> = keys.iter().map(|k| sk.estimate(*k)).collect();
            for i in 0..keys.len() {
                assert_eq!(after[i], before[i] / 2, "halving is exactly floor-div-2 per slot");
                for j in 0..keys.len() {
                    if before[i] >= before[j] {
                        assert!(
                            after[i] >= after[j],
                            "seed {seed}: order inverted ({} vs {}) → ({} vs {})",
                            before[i],
                            before[j],
                            after[i],
                            after[j]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sketch_ages_out_at_sample_threshold() {
        let mut sk = FreqSketch::with_sample(64, 32);
        let mut fired = false;
        for i in 0..64u64 {
            fired |= sk.increment(mix(i));
        }
        assert!(fired, "32-increment sample must trigger a halving");
        assert!(sk.resets() >= 1);
    }

    #[test]
    fn doorkeeper_absorbs_first_sighting() {
        let mut lfu = TinyLfu::with_params(256, u64::MAX, 1024);
        assert_eq!(lfu.frequency(42), 0);
        lfu.record(42);
        assert_eq!(lfu.frequency(42), 1, "doorkeeper bonus only");
        assert_eq!(lfu.doorkeeper_hits(), 1, "first sighting absorbed");
        lfu.record(42);
        assert_eq!(lfu.frequency(42), 2, "second access reaches the sketch");
        assert_eq!(lfu.doorkeeper_hits(), 1);
    }

    #[test]
    fn doorkeeper_clears_with_sketch_reset() {
        let mut lfu = TinyLfu::with_params(64, 8, 512);
        for i in 0..64u64 {
            lfu.record(mix(i));
            lfu.record(mix(i));
        }
        assert!(lfu.sketch_resets() >= 1);
        // A brand-new key right after a reset is a first sighting again.
        let hits = lfu.doorkeeper_hits();
        lfu.record(0xDEAD_BEEF);
        assert_eq!(lfu.doorkeeper_hits(), hits + 1);
    }

    /// Satellite property: 10× the shard budget must yield a strictly
    /// wider sketch and doorkeeper, while the admission semantics for
    /// the same access sequence are unchanged — identical frequency
    /// estimates for every key, identical doorkeeper absorption, and
    /// the same admit/reject verdict for every (candidate, victim)
    /// pair. The wider sketch only reduces collision noise; it never
    /// changes what the rule *means*.
    #[test]
    fn ten_x_budget_widens_sketch_with_unchanged_admission() {
        let budget = 32 << 20;
        let mut small = TinyLfu::for_budget(budget);
        let mut big = TinyLfu::for_budget(10 * budget);
        assert!(
            big.sketch_counters() > small.sketch_counters(),
            "10x budget must widen the sketch ({} vs {})",
            big.sketch_counters(),
            small.sketch_counters()
        );
        assert!(
            big.doorkeeper_bits() > small.doorkeeper_bits(),
            "10x budget must widen the doorkeeper ({} vs {})",
            big.doorkeeper_bits(),
            small.doorkeeper_bits()
        );
        // Same 4:1 doorkeeper:counter ratio as the fixed defaults.
        assert_eq!(small.doorkeeper_bits(), 4 * small.sketch_counters());
        assert_eq!(big.doorkeeper_bits(), 4 * big.sketch_counters());

        // Replay one deterministic mixed-popularity sequence into both.
        let mut rng = Rng(0xB0D6_E7ED);
        let keys: Vec<u64> = (0..256).map(|_| rng.next()).collect();
        let counts: Vec<u64> = keys.iter().map(|_| 1 + rng.below(12)).collect();
        let mut sequence = Vec::new();
        for (k, c) in keys.iter().zip(&counts) {
            for _ in 0..*c {
                sequence.push(*k);
            }
        }
        // Interleave deterministically so doorkeeper windows see the
        // same order in both filters.
        let mut order: Vec<usize> = (0..sequence.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        for &i in &order {
            small.record(sequence[i]);
            big.record(sequence[i]);
        }

        assert_eq!(
            small.doorkeeper_hits(),
            big.doorkeeper_hits(),
            "first-sighting absorption must not depend on budget"
        );
        for k in &keys {
            assert_eq!(
                small.frequency(*k),
                big.frequency(*k),
                "estimate for key {k:#x} must not depend on budget"
            );
        }
        // Every pairwise admission verdict (candidate beats victim)
        // therefore matches too — spot-check the full cross product.
        for a in &keys {
            for b in &keys {
                assert_eq!(
                    small.frequency(*a) > small.frequency(*b),
                    big.frequency(*a) > big.frequency(*b),
                );
            }
        }
    }

    /// Budget extremes stay clamped: a zero budget still gets the
    /// minimum structures, an absurd one the bounded maximum.
    #[test]
    fn budget_sizing_is_clamped() {
        let tiny = TinyLfu::for_budget(0);
        assert_eq!(tiny.sketch_counters(), MIN_COUNTERS.next_power_of_two());
        let huge = TinyLfu::for_budget(usize::MAX);
        assert_eq!(huge.sketch_counters(), MAX_COUNTERS);
        assert_eq!(huge.doorkeeper_bits(), 4 * MAX_COUNTERS);
    }

    #[test]
    fn access_buffer_batches_and_drains() {
        let buf = AccessBuffer::new();
        let mut drains_signalled = 0;
        for i in 0..DRAIN_EVERY as u64 {
            if buf.push(i + 1).should_drain {
                drains_signalled += 1;
            }
        }
        assert_eq!(drains_signalled, 1, "one drain signal per {DRAIN_EVERY} pushes");
        let mut seen = Vec::new();
        assert_eq!(buf.drain(|h| seen.push(h)), DRAIN_EVERY);
        seen.sort_unstable();
        assert_eq!(seen, (1..=DRAIN_EVERY as u64).collect::<Vec<_>>());
        assert_eq!(buf.drain(|_| panic!("drained twice")), 0);
    }

    #[test]
    fn access_buffer_overwrites_are_lossy_not_blocking() {
        let buf = AccessBuffer::new();
        let mut dropped = 0;
        for i in 0..2 * ACCESS_CAP as u64 {
            if buf.push(i + 1).dropped {
                dropped += 1;
            }
        }
        assert_eq!(dropped, ACCESS_CAP, "second lap overwrites the first");
        assert_eq!(buf.drain(|_| {}), ACCESS_CAP);
    }
}
