//! Deterministic multi-node record/replay: the standing harness every
//! serve change is verified against.
//!
//! Three pieces:
//!
//! * **generator** — [`generate_trace`] walks a seeded RNG over
//!   sessions × {submit, MRC, per-PC MRC, plan, co-run, stats, ping} and
//!   captures every request frame through a [`TraceRecorder`]; the same
//!   seed always produces byte-identical traces.
//! * **replay client** — [`replay_against`] drives 1..N daemons from one
//!   trace with a fixed interleaving (trace order, one in-flight request)
//!   and a seeded per-node partitioning by session hash, so a session's
//!   requests land on one node in their recorded order and the responses
//!   are independent of the node count.
//! * **oracle + divergence reporter** — every deterministic response
//!   (MRC, per-PC MRC, plan, ping — not `Accepted`/`Stats`, whose bytes
//!   legitimately depend on node-local store occupancy) is compared
//!   bit-for-bit against a direct in-process
//!   [`StatStackModel`]/[`analyze`] oracle; a mismatch produces a
//!   [`Divergence`] carrying the minimal offending request prefix (the
//!   diverging session's history) and the differing response bytes.
//!
//! Responses that are *not* bit-compared are still type-checked (a
//! submit must yield `Accepted`, a stats request must yield `Stats`).
//! The harness assumes the daemons' session budget exceeds the trace's
//! footprint — the oracle never evicts, so an evicting daemon diverges
//! (by design: eviction under replay is a configuration error).
//!
//! A replay's [`digest`](ReplayReport::digest) is an FNV-1a hash over
//! the deterministic response bodies in trace order; it is invariant
//! across node counts and is what the golden-trace regression test pins.

use crate::client::{Client, ClientError};
use crate::cluster::{apply_membership, RingSpec};
use crate::proto::{
    ErrorCode, MachineId, Request, Response, SampleBatch, Target, MAX_CORUN_SESSIONS,
};
use crate::ring::{Ring, DEFAULT_VNODES};
use crate::server::{start, ServeConfig, ServerHandle};
use crate::trace_file::{Trace, TraceRecorder};
use repf_core::analyze;
use repf_sampling::{Profile, ReuseSample, StrideSample};
use repf_sim::{amd_phenom_ii, intel_i7_2600k};
use repf_statstack::{CoRunModel, StatStackModel};
use repf_trace::hash::FxHashMap;
use repf_trace::{AccessKind, Pc};
use std::net::SocketAddr;
use std::time::Duration;

// --- seeded deterministic RNG (splitmix64; no external deps) ---

/// A tiny deterministic RNG: splitmix64 over a counter. Identical
/// sequences on every platform and build.
#[derive(Clone, Debug)]
pub struct ReplayRng(u64);

impl ReplayRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ReplayRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform pick in `0..n` (`n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// --- trace generator ---

/// Knobs for the deterministic request generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed; equal seeds produce byte-identical traces.
    pub seed: u64,
    /// Distinct sessions (`replay-s0` .. `replay-s{n-1}`).
    pub sessions: u32,
    /// Submit-then-query rounds per session.
    pub rounds: u32,
    /// Reuse samples per submitted batch.
    pub samples_per_batch: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x5EED_0F2E_C02D,
            sessions: 4,
            rounds: 3,
            samples_per_batch: 60,
        }
    }
}

/// The session name the generator uses for index `i`.
pub fn session_name(i: u32) -> String {
    format!("replay-s{i}")
}

/// Candidate cache sizes the generator queries at.
const GEN_SIZES: [u64; 6] = [32 << 10, 128 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20];

/// PCs the generated batches sample (plus one deliberately absent PC in
/// per-PC queries).
const GEN_PCS: [u32; 3] = [100, 200, 300];

fn gen_batch(rng: &mut ReplayRng, samples: u32) -> SampleBatch {
    let mut b = SampleBatch {
        total_refs: 250_000 + rng.below(250_000),
        sample_period: 1009,
        line_bytes: 64,
        ..SampleBatch::default()
    };
    for i in 0..u64::from(samples) {
        let pc = GEN_PCS[rng.below(GEN_PCS.len() as u64) as usize];
        // PC 100 is a far-reuse strided load (misses everywhere); the
        // others mostly hit, so generated plans are non-trivial.
        let distance = if pc == 100 {
            400_000 + rng.below(600_000)
        } else {
            1 + rng.below(48)
        };
        b.reuse.push(ReuseSample {
            start_pc: Pc(pc),
            start_kind: AccessKind::Load,
            end_pc: Pc(pc),
            end_kind: AccessKind::Load,
            distance,
            start_index: i * 4000 + rng.below(1000),
        });
        if rng.below(3) == 0 {
            b.strides.push(StrideSample {
                pc: Pc(pc),
                kind: AccessKind::Load,
                stride: if pc == 100 { 64 } else { 8 },
                recurrence: 6 + rng.below(10),
            });
        }
    }
    b
}

/// One trace in three carries explicit per-session intensity weights;
/// the rest leave them empty (the sample-count-inference wire form).
fn gen_intensities(rng: &mut ReplayRng, k: u64) -> Vec<f64> {
    if rng.below(3) != 0 {
        return Vec::new();
    }
    (0..k).map(|_| 0.5 + rng.below(8) as f64 * 0.5).collect()
}

/// Generate a deterministic trace: each round submits one batch per
/// session and follows with a seeded mix of MRC, per-PC MRC, plan, ping,
/// co-run, placement and stats requests. The whole walk is a pure
/// function of `cfg`.
pub fn generate_trace(cfg: &GenConfig) -> Trace {
    let mut rng = ReplayRng::new(cfg.seed);
    let mut rec = TraceRecorder::new(cfg.seed);
    for _round in 0..cfg.rounds {
        for s in 0..cfg.sessions {
            let session = session_name(s);
            rec.record(Request::Submit {
                session: session.clone(),
                batch: gen_batch(&mut rng, cfg.samples_per_batch),
            });
            let queries = 1 + rng.below(3);
            for _ in 0..queries {
                let target = Target::Session(session.clone());
                match rng.below(8) {
                    0 | 1 => {
                        let n = 1 + rng.below(GEN_SIZES.len() as u64) as usize;
                        let mut sizes: Vec<u64> =
                            (0..n).map(|_| GEN_SIZES[rng.below(6) as usize]).collect();
                        sizes.sort_unstable();
                        rec.record(Request::QueryMrc {
                            target,
                            sizes_bytes: sizes,
                        });
                    }
                    2 => {
                        // Sampled PCs and one absent PC, so the `None`
                        // encoding is exercised too.
                        let pc = if rng.below(4) == 0 {
                            9999
                        } else {
                            GEN_PCS[rng.below(3) as usize]
                        };
                        rec.record(Request::QueryPcMrc {
                            target,
                            pc,
                            sizes_bytes: GEN_SIZES[..3].to_vec(),
                        });
                    }
                    3 => {
                        let machine = if rng.below(2) == 0 {
                            MachineId::Amd
                        } else {
                            MachineId::Intel
                        };
                        let delta = [2.0, 3.5, 4.0][rng.below(3) as usize];
                        rec.record(Request::QueryPlan {
                            target,
                            machine,
                            delta,
                        });
                    }
                    4 => rec.record(Request::Ping),
                    5 => {
                        // Co-run over a run of sessions starting at a
                        // random index — early rounds naturally include
                        // not-yet-submitted names, so the UnknownSession
                        // path is part of the digest too.
                        let pool = u64::from(cfg.sessions.max(1));
                        let k = (2 + rng.below(3)).min(pool);
                        let first = rng.below(pool);
                        let sessions: Vec<String> = (0..k)
                            .map(|j| session_name(((first + j) % pool) as u32))
                            .collect();
                        let n = 1 + rng.below(GEN_SIZES.len() as u64) as usize;
                        let mut sizes: Vec<u64> =
                            (0..n).map(|_| GEN_SIZES[rng.below(6) as usize]).collect();
                        sizes.sort_unstable();
                        // One trace in three overrides the inferred
                        // intensities, so both wire forms are replayed.
                        let intensities = gen_intensities(&mut rng, k);
                        rec.record(Request::CoRun {
                            sessions,
                            sizes_bytes: sizes,
                            intensities,
                        });
                    }
                    6 => {
                        // Placement over a run of sessions; group shape
                        // is always feasible (G·cap ≥ k) so the search
                        // itself — not just validation — is replayed.
                        let pool = u64::from(cfg.sessions.max(1));
                        let k = (2 + rng.below(3)).min(pool);
                        let first = rng.below(pool);
                        let sessions: Vec<String> = (0..k)
                            .map(|j| session_name(((first + j) % pool) as u32))
                            .collect();
                        let groups = (1 + rng.below(2)) as u32;
                        let capacity = k.div_ceil(u64::from(groups)) as u32 + rng.below(2) as u32;
                        let size_bytes = GEN_SIZES[rng.below(6) as usize];
                        let intensities = gen_intensities(&mut rng, k);
                        rec.record(Request::Place {
                            sessions,
                            groups,
                            capacity,
                            size_bytes,
                            intensities,
                        });
                    }
                    _ => rec.record(Request::Stats),
                }
            }
        }
    }
    rec.finish()
}

// --- routing ---

/// The session a request addresses, when it addresses one.
pub fn session_of(req: &Request) -> Option<&str> {
    match req {
        Request::Submit { session, .. } => Some(session),
        Request::QueryMrc {
            target: Target::Session(s),
            ..
        }
        | Request::QueryPcMrc {
            target: Target::Session(s),
            ..
        }
        | Request::QueryPlan {
            target: Target::Session(s),
            ..
        } => Some(s),
        _ => None,
    }
}

/// Session→node partitioning, delegated to the cluster tier's
/// consistent-hash [`Ring`] — the same placement the daemons, the load
/// generator and the `repf ring` CLI compute, so a session's entire
/// history lands on its ring owner in recorded order. Returns an index
/// into [`Ring::nodes`] (the sorted member list).
pub fn node_of(req: &Request, index: usize, ring: &Ring) -> usize {
    match session_of(req) {
        Some(name) => ring.owner_index(name).expect("replay ring is non-empty"),
        // Session-less requests (ping, stats, benchmark queries) round-
        // robin deterministically by trace position.
        None => index % ring.len(),
    }
}

// --- oracle ---

struct OracleSession {
    profile: Profile,
    version: u64,
    fitted: Option<(u64, StatStackModel)>,
}

/// A direct in-process reference: accumulates submitted batches per
/// session and answers queries straight from
/// [`StatStackModel::from_profile`] and [`analyze`] — no daemon, no
/// cache, no sharding. What the daemons must agree with, bit for bit.
#[derive(Default)]
pub struct Oracle {
    sessions: FxHashMap<String, OracleSession>,
}

impl Oracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    fn model_of(&mut self, name: &str) -> Option<&StatStackModel> {
        let s = self.sessions.get_mut(name)?;
        let stale = match &s.fitted {
            Some((v, _)) => *v != s.version,
            None => true,
        };
        if stale {
            s.fitted = Some((s.version, StatStackModel::from_profile(&s.profile)));
        }
        Some(&s.fitted.as_ref().unwrap().1)
    }

    fn unknown(name: &str) -> Response {
        Response::Error {
            code: ErrorCode::UnknownSession,
            message: format!("unknown session '{name}'"),
        }
    }

    fn empty_sizes() -> Response {
        Response::Error {
            code: ErrorCode::Unsupported,
            message: "empty size list".into(),
        }
    }

    fn unsupported(message: String) -> Response {
        Response::Error {
            code: ErrorCode::Unsupported,
            message,
        }
    }

    /// The shared `CoRun`/`Place` validation prefix, mirroring the
    /// server's `validate_session_list` byte for byte: empty list,
    /// over-limit list, duplicate name, intensity-count mismatch.
    fn validate_session_list(names: &[String], intensities: &[f64]) -> Option<Response> {
        if names.is_empty() {
            return Some(Self::unsupported("empty session list".into()));
        }
        if names.len() > MAX_CORUN_SESSIONS {
            return Some(Self::unsupported(format!(
                "co-run of {} sessions exceeds the cap of {MAX_CORUN_SESSIONS}",
                names.len()
            )));
        }
        for (i, name) in names.iter().enumerate() {
            if names[..i].contains(name) {
                return Some(Self::unsupported(format!("duplicate session '{name}'")));
            }
        }
        if !intensities.is_empty() && intensities.len() != names.len() {
            return Some(Self::unsupported(format!(
                "{} intensities for {} sessions",
                intensities.len(),
                names.len()
            )));
        }
        None
    }

    /// Fit every named session (first unresolvable name errors, in
    /// request order), then gather the now-current model refs.
    fn fitted_models(&mut self, names: &[String]) -> Result<Vec<&StatStackModel>, Response> {
        // First pass fits (mutable borrow per name), second pass gathers
        // the now-current refs for composition.
        for name in names {
            if self.model_of(name).is_none() {
                return Err(Self::unknown(name));
            }
        }
        Ok(names
            .iter()
            .map(|n| &self.sessions[n.as_str()].fitted.as_ref().expect("fitted above").1)
            .collect())
    }

    /// The exact co-run response a correct daemon produces, mirroring
    /// `handle_co_run`'s validation order byte for byte and answering
    /// through the same [`CoRunModel`] the server uses.
    fn co_run(&mut self, names: &[String], sizes: &[u64], intensities: &[f64]) -> Response {
        if let Some(err) = Self::validate_session_list(names, intensities) {
            return err;
        }
        if sizes.is_empty() {
            return Self::empty_sizes();
        }
        let models = match self.fitted_models(names) {
            Ok(m) => m,
            Err(e) => return e,
        };
        let mut co = CoRunModel::new();
        for (i, m) in models.into_iter().enumerate() {
            if intensities.is_empty() {
                co.push(m);
            } else {
                co.push_with_intensity(m, intensities[i]);
            }
        }
        let answer = co.answer_bytes(sizes);
        Response::CoRun {
            per_session: names.iter().cloned().zip(answer.per_member).collect(),
            throughput: answer.throughput,
        }
    }

    /// The exact placement response a correct daemon produces, mirroring
    /// `handle_place`'s validation order and answering through the same
    /// single-threaded-equivalent search (bit-identical at any thread
    /// count by construction, so one thread is the simplest reference).
    fn place(
        &mut self,
        names: &[String],
        groups: u32,
        capacity: u32,
        size_bytes: u64,
        intensities: &[f64],
    ) -> Response {
        if let Some(err) = Self::validate_session_list(names, intensities) {
            return err;
        }
        if groups == 0 || capacity == 0 {
            return Self::unsupported("groups and capacity must be positive".into());
        }
        if names.len() as u64 > u64::from(groups) * u64::from(capacity) {
            return Self::unsupported(format!(
                "{} sessions do not fit in {groups} groups of {capacity}",
                names.len()
            ));
        }
        let models = match self.fitted_models(names) {
            Ok(m) => m,
            Err(e) => return e,
        };
        let weights: Vec<f64> = if intensities.is_empty() {
            models.iter().map(|m| m.sample_count() as f64).collect()
        } else {
            intensities.to_vec()
        };
        let result = repf_statstack::placement::place(
            &models, &weights, groups, capacity, size_bytes, 1,
        );
        Response::Placement {
            groups: result
                .groups
                .iter()
                .map(|g| g.iter().map(|&i| names[i].clone()).collect())
                .collect(),
            total_miss_ratio: result.total_miss_ratio,
            throughput: result.throughput,
            nodes_explored: result.nodes_explored,
            pruned: result.pruned,
        }
    }

    /// Apply `req` to the oracle's state and return the exact response a
    /// correct daemon must produce — or `None` when the response is
    /// legitimately node-dependent (`Submit`, `Stats`) or out of the
    /// oracle's scope (benchmark targets, shutdown).
    pub fn expected(&mut self, req: &Request) -> Option<Response> {
        match req {
            Request::Ping => Some(Response::Pong),
            Request::Submit { session, batch } => {
                let s = self
                    .sessions
                    .entry(session.clone())
                    .or_insert_with(|| OracleSession {
                        profile: Profile {
                            sample_period: batch.sample_period,
                            line_bytes: batch.line_bytes,
                            ..Profile::default()
                        },
                        version: 0,
                        fitted: None,
                    });
                if s.profile.line_bytes == batch.line_bytes {
                    s.version += 1;
                    s.profile.total_refs += batch.total_refs;
                    s.profile.sample_period = batch.sample_period;
                    s.profile.reuse.extend(batch.reuse.iter().cloned());
                    s.profile.dangling.extend(batch.dangling.iter().cloned());
                    s.profile.strides.extend(batch.strides.iter().cloned());
                }
                // `Accepted{store_bytes,..}` depends on what else the
                // node holds — type-checked, not bit-compared.
                None
            }
            Request::QueryMrc {
                target: Target::Session(name),
                sizes_bytes,
            } => {
                if sizes_bytes.is_empty() {
                    return Some(Self::empty_sizes());
                }
                Some(match self.model_of(name) {
                    None => Self::unknown(name),
                    Some(m) => Response::Mrc {
                        ratios: sizes_bytes.iter().map(|&b| m.miss_ratio_bytes(b)).collect(),
                    },
                })
            }
            Request::QueryPcMrc {
                target: Target::Session(name),
                pc,
                sizes_bytes,
            } => {
                if sizes_bytes.is_empty() {
                    return Some(Self::empty_sizes());
                }
                Some(match self.model_of(name) {
                    None => Self::unknown(name),
                    Some(m) => Response::PcMrc {
                        ratios: m
                            .pc_mrc_bytes(Pc(*pc), sizes_bytes)
                            .map(|c| c.ratios().to_vec()),
                    },
                })
            }
            Request::QueryPlan {
                target: Target::Session(name),
                machine,
                delta,
            } => {
                if !delta.is_finite() || *delta <= 0.0 {
                    return Some(Response::Error {
                        code: ErrorCode::Unsupported,
                        message: "session plan queries need a positive finite delta".into(),
                    });
                }
                let machine_cfg = match machine {
                    MachineId::Amd => amd_phenom_ii(),
                    MachineId::Intel => intel_i7_2600k(),
                };
                let cfg = machine_cfg.analysis_config(*delta);
                let Some(s) = self.sessions.get(name.as_str()) else {
                    return Some(Self::unknown(name));
                };
                let analysis = analyze(&s.profile, &cfg);
                Some(Response::Plan(crate::proto::PlanWire::from_plan(
                    &analysis.plan,
                    *delta,
                )))
            }
            Request::CoRun {
                sessions,
                sizes_bytes,
                intensities,
            } => Some(self.co_run(sessions, sizes_bytes, intensities)),
            Request::Place {
                sessions,
                groups,
                capacity,
                size_bytes,
                intensities,
            } => Some(self.place(sessions, *groups, *capacity, *size_bytes, intensities)),
            // Benchmark targets share the server-side plan cache; they
            // are deterministic but out of the oracle's scope.
            Request::QueryMrc { .. } | Request::QueryPcMrc { .. } | Request::QueryPlan { .. } => {
                None
            }
            Request::Stats | Request::Shutdown => None,
            // Peer-protocol requests never appear in client traces; a
            // recorded one is skipped by the replay loop anyway.
            Request::RingGet
            | Request::RingSet { .. }
            | Request::PeerForward { .. }
            | Request::SessionImport { .. }
            | Request::ModelPull { .. }
            | Request::ModelPullCurrent { .. } => None,
        }
    }
}

// --- replay ---

/// Replay knobs.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Partition-hash seed for session→node routing.
    pub seed: u64,
    /// Bit-compare deterministic responses against the oracle. Off, the
    /// replay only type-checks responses (the overhead baseline).
    pub check: bool,
    /// Per-call client timeout.
    pub timeout: Duration,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            seed: 0,
            check: true,
            timeout: Duration::from_secs(30),
        }
    }
}

/// One detected mismatch between a node's response and the oracle.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Trace index of the offending request.
    pub index: usize,
    /// Node that answered.
    pub node: usize,
    /// Session the request addressed, if any.
    pub session: Option<String>,
    /// The offending request.
    pub request: Request,
    /// Why the response was rejected.
    pub reason: &'static str,
    /// The node's response, as an encoded frame body.
    pub got: Vec<u8>,
    /// The oracle's response, as an encoded frame body (empty for
    /// type-only checks).
    pub want: Vec<u8>,
    /// Offset of the first differing byte.
    pub first_diff: usize,
    /// The minimal offending request prefix: every earlier request that
    /// touched the same session, plus the offending request itself —
    /// replaying just these reproduces the divergence.
    pub prefix: Vec<Request>,
}

impl Divergence {
    /// The minimal repro as a saveable trace.
    pub fn prefix_trace(&self) -> Trace {
        Trace {
            seed: 0,
            records: self.prefix.clone(),
        }
    }
}

fn hex_window(bytes: &[u8], around: usize) -> String {
    let start = around.saturating_sub(8);
    let end = (around + 8).min(bytes.len());
    let mut s = String::new();
    for (i, b) in bytes[start..end].iter().enumerate() {
        if start + i == around {
            s.push('[');
        }
        s.push_str(&format!("{b:02x}"));
        if start + i == around {
            s.push(']');
        }
        s.push(' ');
    }
    s
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "divergence at trace index {} on node {} ({}): {}",
            self.index,
            self.node,
            self.session.as_deref().unwrap_or("<no session>"),
            self.reason
        )?;
        writeln!(f, "  request: {:?}", self.request.kind_name())?;
        writeln!(
            f,
            "  got  ({} B) ...{}",
            self.got.len(),
            hex_window(&self.got, self.first_diff)
        )?;
        writeln!(
            f,
            "  want ({} B) ...{}",
            self.want.len(),
            hex_window(&self.want, self.first_diff)
        )?;
        write!(
            f,
            "  minimal prefix: {} request(s) ending at index {}",
            self.prefix.len(),
            self.index
        )
    }
}

/// What a replay run produced.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Requests sent (shutdown records are skipped, not sent).
    pub requests: u64,
    /// Shutdown records skipped (the harness owns node lifecycles).
    pub skipped: u64,
    /// Requests routed to each node.
    pub per_node: Vec<u64>,
    /// Responses bit-compared against the oracle.
    pub checked: u64,
    /// FNV-1a digest over deterministic response bodies in trace order;
    /// invariant across node counts.
    pub digest: u64,
    /// Every detected mismatch, in trace order.
    pub divergences: Vec<Divergence>,
}

impl ReplayReport {
    /// `true` when every checked response matched the oracle.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Response bodies folded into the digest: the deterministic kinds. A
/// `Stats` or `Accepted` body depends on node-local occupancy and
/// timing, so including them would make the digest node-count-dependent.
fn digestible(resp: &Response) -> bool {
    matches!(
        resp,
        Response::Pong
            | Response::Mrc { .. }
            | Response::PcMrc { .. }
            | Response::Plan(_)
            | Response::CoRun { .. }
            | Response::Placement { .. }
            | Response::Error { .. }
    )
}

/// The response type `req` must produce (when not bit-compared).
/// `Error` is always admissible — the oracle decides exactness.
fn kind_matches(req: &Request, resp: &Response) -> bool {
    matches!(
        (req, resp),
        (_, Response::Error { .. })
            | (Request::Ping, Response::Pong)
            | (Request::Submit { .. }, Response::Accepted { .. })
            | (Request::QueryMrc { .. }, Response::Mrc { .. })
            | (Request::QueryPcMrc { .. }, Response::PcMrc { .. })
            | (Request::QueryPlan { .. }, Response::Plan(_))
            | (Request::CoRun { .. }, Response::CoRun { .. })
            | (Request::Place { .. }, Response::Placement { .. })
            | (Request::Stats, Response::Stats(_))
            | (Request::Shutdown, Response::ShuttingDown)
    )
}

/// Strip the length prefix from an encoded frame.
fn body(resp: &Response) -> Vec<u8> {
    resp.encode()[4..].to_vec()
}

/// The per-request replay machinery shared by the static and the
/// churned entry points: oracle tracking, Busy backoff, digest folding
/// and divergence capture. The caller owns routing.
struct ReplayCore<'a> {
    trace: &'a Trace,
    cfg: &'a ReplayConfig,
    oracle: Oracle,
    history: FxHashMap<String, Vec<usize>>,
    report: ReplayReport,
}

impl<'a> ReplayCore<'a> {
    fn new(trace: &'a Trace, cfg: &'a ReplayConfig, nodes: usize) -> Self {
        ReplayCore {
            trace,
            cfg,
            oracle: Oracle::new(),
            history: FxHashMap::default(),
            report: ReplayReport {
                requests: 0,
                skipped: 0,
                per_node: vec![0; nodes],
                checked: 0,
                digest: 0xcbf2_9ce4_8422_2325,
                divergences: Vec::new(),
            },
        }
    }

    /// Send `trace.records[i]` to `client` (node `node` for the
    /// report), check it, and fold it into the digest.
    fn step(&mut self, i: usize, node: usize, client: &mut Client) -> Result<(), ClientError> {
        let req = &self.trace.records[i];
        self.report.per_node[node] += 1;
        self.report.requests += 1;
        // A sequential replay keeps at most one request in any node's
        // queue, but an externally-shared daemon may still shed load —
        // back off briefly on Busy rather than failing the run.
        let mut resp = client.call_any(req)?;
        let mut retries = 0;
        while matches!(resp, Response::Busy) && retries < 50 {
            std::thread::sleep(Duration::from_millis(10));
            resp = client.call_any(req)?;
            retries += 1;
        }
        let session = session_of(req).map(str::to_string);
        let expected = self.oracle.expected(req);
        if let Some(name) = &session {
            self.history.entry(name.clone()).or_default().push(i);
        }
        if digestible(&resp) && !matches!(req, Request::Stats) {
            fnv1a(&mut self.report.digest, &body(&resp));
        }
        if !self.cfg.check {
            return Ok(());
        }
        let mut diverge = |reason: &'static str, got: Vec<u8>, want: Vec<u8>| {
            let first_diff = got
                .iter()
                .zip(&want)
                .position(|(g, w)| g != w)
                .unwrap_or_else(|| got.len().min(want.len()));
            let prefix = match &session {
                Some(name) => self.history[name]
                    .iter()
                    .map(|&ix| self.trace.records[ix].clone())
                    .collect(),
                None => vec![req.clone()],
            };
            self.report.divergences.push(Divergence {
                index: i,
                node,
                session: session.clone(),
                request: req.clone(),
                reason,
                got,
                want,
                first_diff,
                prefix,
            });
        };
        match expected {
            Some(want) => {
                self.report.checked += 1;
                let got_b = body(&resp);
                let want_b = body(&want);
                if got_b != want_b {
                    diverge("response bytes differ from oracle", got_b, want_b);
                }
            }
            None => {
                if !kind_matches(req, &resp) {
                    diverge("response type does not match request", body(&resp), Vec::new());
                }
            }
        }
        Ok(())
    }
}

/// Replay `trace` against already-running daemons at `addrs`, in trace
/// order with one in-flight request — barrier-free but fully
/// reproducible. Routing is the cluster ring over the address strings
/// (seeded by `cfg.seed`); `per_node` in the report is indexed by the
/// `addrs` argument order. Transport failures abort the run.
pub fn replay_against(
    addrs: &[SocketAddr],
    trace: &Trace,
    cfg: &ReplayConfig,
) -> Result<ReplayReport, ClientError> {
    assert!(!addrs.is_empty(), "replay needs at least one node");
    // Same fail-fast descriptor preflight as the load generator: one
    // client per node plus the fixed reserve, checked (after a
    // best-effort raise) before any connection opens, so a low
    // `ulimit -n` stops a multi-node fan-out up front instead of
    // half-connecting.
    crate::loadgen::preflight_fd_budget(addrs.len(), 0)?;
    let names: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let ring = Ring::new(cfg.seed, DEFAULT_VNODES, names.clone());
    // The ring sorts members; map ring indexes back to argument order.
    let order: Vec<usize> = ring
        .nodes()
        .iter()
        .map(|n| names.iter().position(|a| a == n).expect("member from input"))
        .collect();
    let mut clients = Vec::with_capacity(addrs.len());
    for a in addrs {
        let mut c = Client::connect(a)?;
        c.set_timeout(Some(cfg.timeout))?;
        clients.push(c);
    }
    let mut core = ReplayCore::new(trace, cfg, addrs.len());
    for i in 0..trace.records.len() {
        if matches!(trace.records[i], Request::Shutdown) {
            core.report.skipped += 1;
            continue;
        }
        let node = order[node_of(&trace.records[i], i, &ring)];
        core.step(i, node, &mut clients[node])?;
    }
    Ok(core.report)
}

/// A ring-membership change injected mid-trace by
/// [`replay_clustered`].
#[derive(Clone, Debug)]
pub enum RingChange {
    /// Remove the node at this spawn index from the ring (the daemon
    /// keeps running and forwards stragglers — drain, not kill).
    Drain(usize),
    /// Spawn a fresh node and add it to the ring.
    Join,
}

/// When to inject a [`RingChange`]: before sending trace record `at`.
#[derive(Clone, Debug)]
pub struct ChurnEvent {
    /// Trace index the change precedes.
    pub at: usize,
    /// The membership change.
    pub change: RingChange,
}

/// Replay `trace` against an `n`-node *cluster*: the daemons share a
/// consistent-hash ring (installed via `RingSet`, epoch 1), sessions
/// are routed to their ring owner, and each [`ChurnEvent`] injects a
/// live membership change — drain or join — mid-trace, with the
/// affected sessions migrating between nodes while the replay
/// continues. The response digest must equal a single-node replay of
/// the same trace; that equality is the cluster tier's core
/// correctness test.
pub fn replay_clustered(
    n: usize,
    trace: &Trace,
    serve_cfg: &ServeConfig,
    replay_cfg: &ReplayConfig,
    churn: &[ChurnEvent],
) -> Result<ReplayReport, ClientError> {
    let spawn = || {
        start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            peers: Vec::new(),
            ..serve_cfg.clone()
        })
    };
    let mut nodes: Vec<ServerHandle> = Vec::new();
    for _ in 0..n.max(1) {
        nodes.push(spawn()?);
    }
    let addr_of = |h: &ServerHandle| h.addr().to_string();
    let mut members: Vec<String> = nodes.iter().map(addr_of).collect();
    let spec = |members: &[String]| RingSpec {
        seed: replay_cfg.seed,
        vnodes: DEFAULT_VNODES,
        nodes: members.to_vec(),
    };
    let run = (|| -> Result<ReplayReport, ClientError> {
        apply_membership(&members, &spec(&members))?;
        let mut ring = Ring::new(replay_cfg.seed, DEFAULT_VNODES, members.clone());
        let mut clients: FxHashMap<String, Client> = FxHashMap::default();
        // Reserve report slots for joiners up front so `per_node` is
        // indexed by spawn order across the whole run.
        let joins = churn
            .iter()
            .filter(|c| matches!(c.change, RingChange::Join))
            .count();
        let mut core = ReplayCore::new(trace, replay_cfg, nodes.len() + joins);
        let mut churn = churn.to_vec();
        churn.sort_by_key(|c| c.at);
        let mut next_churn = 0usize;
        for i in 0..trace.records.len() {
            while next_churn < churn.len() && churn[next_churn].at <= i {
                match churn[next_churn].change {
                    RingChange::Drain(k) => {
                        let gone = addr_of(&nodes[k]);
                        members.retain(|m| *m != gone);
                        assert!(!members.is_empty(), "drain would empty the ring");
                    }
                    RingChange::Join => {
                        let h = spawn()?;
                        members.push(addr_of(&h));
                        nodes.push(h);
                    }
                }
                // Contacts are the union of old and new members: drained
                // nodes keep running (they must shed their keys first)
                // and a joiner must be told the ring too — a ringless
                // joiner would answer session queries fine but could
                // never resolve peer-owned co-run members.
                let contacts: Vec<String> = nodes.iter().map(addr_of).collect();
                // Losers-first ordering happens inside apply_membership;
                // it returns only when every migration has completed.
                apply_membership(&contacts, &spec(&members))?;
                ring = Ring::new(replay_cfg.seed, DEFAULT_VNODES, members.clone());
                next_churn += 1;
            }
            if matches!(trace.records[i], Request::Shutdown) {
                core.report.skipped += 1;
                continue;
            }
            let addr = ring.nodes()[node_of(&trace.records[i], i, &ring)].clone();
            let node = nodes
                .iter()
                .position(|h| addr_of(h) == addr)
                .expect("ring member is a spawned node");
            if !clients.contains_key(&addr) {
                let mut c = Client::connect(addr.as_str())?;
                c.set_timeout(Some(replay_cfg.timeout))?;
                clients.insert(addr.clone(), c);
            }
            core.step(i, node, clients.get_mut(&addr).expect("just inserted"))?;
        }
        Ok(core.report)
    })();
    for node in nodes {
        node.shutdown();
    }
    run
}

/// Start `n` loopback daemons on ephemeral ports with `serve_cfg`
/// (address overridden), replay `trace` against them, then shut every
/// node down. The convenience entry the tests, CLI and bench share.
/// With `n > 1` the daemons get the same ring the harness routes by
/// installed (no churn — see [`replay_clustered`] for that), so
/// co-run requests landing on a non-owner can pull peer session models;
/// every session-targeted request still lands on its owner and is
/// answered purely locally.
pub fn replay_spawned(
    n: usize,
    trace: &Trace,
    serve_cfg: &ServeConfig,
    replay_cfg: &ReplayConfig,
) -> Result<ReplayReport, ClientError> {
    let nodes: Vec<ServerHandle> = (0..n.max(1))
        .map(|_| {
            start(ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..serve_cfg.clone()
            })
        })
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = nodes.iter().map(|h| h.addr()).collect();
    let report = (|| {
        if addrs.len() > 1 {
            let members: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
            apply_membership(
                &members,
                &RingSpec {
                    seed: replay_cfg.seed,
                    vnodes: DEFAULT_VNODES,
                    nodes: members.clone(),
                },
            )?;
        }
        replay_against(&addrs, trace, replay_cfg)
    })();
    for node in nodes {
        node.shutdown();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_seed_sensitive() {
        let cfg = GenConfig::default();
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(a, b, "same seed, same trace");
        assert!(!a.is_empty());
        let c = generate_trace(&GenConfig {
            seed: cfg.seed ^ 1,
            ..cfg
        });
        assert_ne!(a, c, "different seed, different trace");
        // Every session submits every round.
        let submits = a
            .records
            .iter()
            .filter(|r| matches!(r, Request::Submit { .. }))
            .count();
        assert_eq!(submits as u32, cfg.sessions * cfg.rounds);
    }

    #[test]
    fn routing_is_stable_and_session_sticky() {
        let trace = generate_trace(&GenConfig::default());
        for nodes in [1usize, 2, 3, 5] {
            let members: Vec<String> = (0..nodes).map(|k| format!("127.0.0.1:{}", 9000 + k)).collect();
            let ring = Ring::new(7, DEFAULT_VNODES, members);
            let mut session_node: FxHashMap<String, usize> = FxHashMap::default();
            for (i, req) in trace.records.iter().enumerate() {
                let n = node_of(req, i, &ring);
                assert!(n < nodes);
                assert_eq!(n, node_of(req, i, &ring), "stable");
                if let Some(s) = session_of(req) {
                    let prev = session_node.entry(s.to_string()).or_insert(n);
                    assert_eq!(*prev, n, "session {s} stays on one node");
                }
            }
        }
    }

    #[test]
    fn oracle_mirrors_store_semantics() {
        let mut o = Oracle::new();
        assert_eq!(o.expected(&Request::Ping), Some(Response::Pong));
        // Unknown session errors exactly like the server.
        let q = Request::QueryMrc {
            target: Target::Session("ghost".into()),
            sizes_bytes: vec![1 << 20],
        };
        match o.expected(&q) {
            Some(Response::Error { code, message }) => {
                assert_eq!(code, ErrorCode::UnknownSession);
                assert_eq!(message, "unknown session 'ghost'");
            }
            other => panic!("want UnknownSession, got {other:?}"),
        }
        // Submit is applied but not bit-compared.
        let mut rng = ReplayRng::new(1);
        let sub = Request::Submit {
            session: "s".into(),
            batch: gen_batch(&mut rng, 40),
        };
        assert_eq!(o.expected(&sub), None);
        let q = Request::QueryMrc {
            target: Target::Session("s".into()),
            sizes_bytes: vec![32 << 10, 8 << 20],
        };
        match o.expected(&q) {
            Some(Response::Mrc { ratios }) => assert_eq!(ratios.len(), 2),
            other => panic!("want Mrc, got {other:?}"),
        }
        // Stats is never bit-compared.
        assert_eq!(o.expected(&Request::Stats), None);
    }
}
