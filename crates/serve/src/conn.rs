//! Per-connection state for the readiness-polled server: incremental
//! length-prefixed frame accumulation, buffered partial writes, and the
//! idle/write deadlines — everything one nonblocking socket needs
//! between readiness notifications.
//!
//! The pieces are transport-agnostic ([`FrameAccumulator`] eats byte
//! slices, [`WriteBuf`] drains into any `Write`), so the protocol state
//! machine is unit-testable without sockets; [`Conn`] binds them to a
//! `TcpStream` plus the deadline bookkeeping the event loop's timer
//! heap reads.
//!
//! Deadline semantics mirror the threaded path's `read_frame_polling`:
//! the idle clock for a frame starts when the previous frame completed
//! (or the connection was accepted) and is **not** extended by partial
//! progress — a peer dripping one byte per poll interval (slow loris)
//! is evicted after `idle_timeout` just like an entirely silent one.
//! The write clock starts when buffered output stalls and clears when
//! the buffer drains.

use crate::proto::{ProtoError, MAX_FRAME_BYTES};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Incremental parser for `[len: u32 LE][body]` frames fed by arbitrary
/// byte chunks. Validates each length prefix exactly like
/// [`crate::proto::read_frame`]: a prefix below 2 or above
/// [`MAX_FRAME_BYTES`] poisons the stream (framing is unrecoverable).
#[derive(Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    pos: usize,
    /// Set once a length prefix was rejected; every later call reports
    /// the same error (the stream cannot resynchronize).
    poisoned: Option<ProtoError>,
}

impl FrameAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed freshly-read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when a frame (or its header) has started but not finished
    /// — the state the slow-loris deadline applies to.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Pop the next complete frame body (length prefix stripped), if
    /// the buffered bytes contain one.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buffered() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        if len < 2 {
            self.poisoned = Some(ProtoError::TooShort);
            return Err(ProtoError::TooShort);
        }
        if len > MAX_FRAME_BYTES {
            self.poisoned = Some(ProtoError::Oversized(len));
            return Err(ProtoError::Oversized(len));
        }
        let total = 4 + len as usize;
        if self.buffered() < total {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.pos + 4..self.pos + total].to_vec();
        self.pos += total;
        self.compact();
        Ok(Some(body))
    }

    /// Drop consumed bytes once they dominate the buffer, so a
    /// long-lived connection's buffer stays proportional to its unread
    /// backlog, not its history.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Buffered outbound frames with partial-write resumption: responses
/// are appended as fully-encoded frames and flushed as far as the
/// socket accepts, keeping a cursor so `EPOLLOUT` can continue exactly
/// where the kernel buffer filled up.
///
/// Two flush strategies, byte-identical on the wire:
///
/// * **vectored** (default) — frames are kept as separate buffers and
///   flushed with `write_vectored` (`writev`), so queuing a frame never
///   copies its bytes and a backlog of responses goes out in one
///   scatter-gather syscall;
/// * **coalescing** ([`set_coalesce`](Self::set_coalesce)) — frames are
///   copied into one contiguous buffer and flushed with plain `write`,
///   the pre-batching reference behavior the unbatched epoll path keeps
///   for before/after comparison.
#[derive(Default)]
pub struct WriteBuf {
    /// Queued frames; in coalescing mode at most one entry that every
    /// push appends to.
    frames: VecDeque<Vec<u8>>,
    /// Bytes of `frames[0]` already written.
    head: usize,
    coalesce: bool,
}

/// Most frames handed to one `write_vectored` call; a longer backlog
/// just takes another call.
const MAX_IOVECS: usize = 64;

impl WriteBuf {
    /// An empty buffer (vectored flush).
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch to the coalescing (contiguous copy + plain `write`)
    /// strategy. Only meaningful while empty.
    pub fn set_coalesce(&mut self) {
        debug_assert!(self.is_empty());
        self.coalesce = true;
    }

    /// Queue a fully-encoded frame (length prefix included).
    pub fn push_frame(&mut self, frame: &[u8]) {
        if self.coalesce {
            match self.frames.back_mut() {
                Some(buf) => buf.extend_from_slice(frame),
                None => self.frames.push_back(frame.to_vec()),
            }
        } else {
            self.frames.push_back(frame.to_vec());
        }
    }

    /// Hand over an already-encoded frame without copying it (vectored
    /// mode's zero-copy entry; coalescing mode still copies).
    pub fn push_frame_owned(&mut self, frame: Vec<u8>) {
        if self.coalesce {
            self.push_frame(&frame);
        } else {
            self.frames.push_back(frame);
        }
    }

    /// Unwritten bytes pending.
    pub fn pending(&self) -> usize {
        self.frames.iter().map(Vec::len).sum::<usize>() - self.head
    }

    /// Queued frames not yet fully written (in coalescing mode, 0 or 1
    /// regardless of how many frames were pushed).
    pub fn frames_pending(&self) -> usize {
        self.frames.len()
    }

    /// `true` when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Drop `n` written bytes from the front of the queue.
    fn consume(&mut self, mut n: usize) {
        while n > 0 {
            let front_left = self.frames[0].len() - self.head;
            if n >= front_left {
                n -= front_left;
                self.head = 0;
                self.frames.pop_front();
            } else {
                self.head += n;
                n = 0;
            }
        }
    }

    /// Write as much as `w` accepts. Returns `Ok(true)` when the buffer
    /// fully drained, `Ok(false)` when the writer would block with
    /// bytes still pending. `Interrupted` is retried; `WouldBlock` is
    /// not an error.
    pub fn write_to(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while !self.frames.is_empty() {
            let wrote = if self.coalesce || self.frames.len() == 1 {
                w.write(&self.frames[0][self.head..])
            } else {
                let mut slices: Vec<std::io::IoSlice<'_>> =
                    Vec::with_capacity(self.frames.len().min(MAX_IOVECS));
                slices.push(std::io::IoSlice::new(&self.frames[0][self.head..]));
                for f in self.frames.iter().skip(1).take(MAX_IOVECS - 1) {
                    slices.push(std::io::IoSlice::new(f));
                }
                w.write_vectored(&slices)
            };
            match wrote {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.consume(n),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.head = 0;
        Ok(true)
    }
}

/// What [`Conn::read_ready`] observed on the socket.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The socket is drained for now; the connection stays open.
    Open,
    /// Peer closed its end (EOF). Clean only at a frame boundary — the
    /// caller checks `mid_frame()`.
    PeerClosed,
    /// Transport error; the connection is dead.
    Failed,
}

/// One nonblocking connection: socket, parser, write buffer, dispatch
/// queue and deadlines. The event loop owns a `Conn` per live socket
/// and drives it from readiness and timer events.
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// The epoll token (also the key in the connection table). Tokens
    /// are never reused, so late worker completions for a closed
    /// connection drop harmlessly.
    pub token: u64,
    /// Inbound frame parser.
    pub acc: FrameAccumulator,
    /// Outbound buffer (responses in order).
    pub out: WriteBuf,
    /// Complete frame bodies decoded but not yet dispatched — at most
    /// one request per connection is in flight on the worker pool, so a
    /// pipelining client's extra frames wait here in arrival order.
    pub pending: VecDeque<Vec<u8>>,
    /// A request from this connection is on the worker pool.
    pub in_flight: bool,
    /// Close once the write buffer drains (set after framing errors and
    /// during drain).
    pub closing: bool,
    /// The epoll interest bits currently registered for this socket
    /// (server-maintained; `0` until registration).
    pub interest: u32,
    /// A framing violation was observed; the Malformed error is sent
    /// (and the connection closed) only after the complete frames that
    /// arrived ahead of it have been answered, matching the threaded
    /// path's answer-then-close order for pipelined clients.
    pub poison: Option<ProtoError>,
    /// Idle/slow-loris deadline: when the frame being awaited must be
    /// complete.
    pub read_deadline: Instant,
    /// When stalled buffered output must have drained (set while
    /// `out` is non-empty).
    pub write_deadline: Option<Instant>,
    /// Peer sent EOF (or `shutdown(SHUT_WR)`): stop reading, but finish
    /// answering what was already received before closing.
    pub read_closed: bool,
    /// A cluster peer-protocol frame was seen on this connection:
    /// pooled node-to-node connections sit idle between forwards by
    /// design, so the idle deadline stops evicting (the write deadline
    /// still applies — a stuck peer is still a stuck peer).
    pub is_peer: bool,
    idle_timeout: Duration,
    write_timeout: Duration,
}

impl Conn {
    /// Wrap a freshly-accepted nonblocking socket.
    pub fn new(
        stream: TcpStream,
        token: u64,
        now: Instant,
        idle_timeout: Duration,
        write_timeout: Duration,
    ) -> Self {
        Conn {
            stream,
            token,
            acc: FrameAccumulator::new(),
            out: WriteBuf::new(),
            pending: VecDeque::new(),
            in_flight: false,
            closing: false,
            interest: 0,
            poison: None,
            read_deadline: now + idle_timeout,
            write_deadline: None,
            read_closed: false,
            is_peer: false,
            idle_timeout,
            write_timeout,
        }
    }

    /// Restart the idle clock (a frame completed, or a response opened
    /// the wait for the next request).
    pub fn touch_read(&mut self, now: Instant) {
        self.read_deadline = now + self.idle_timeout;
    }

    /// The earliest instant this connection needs timer attention, or
    /// `None` when no deadline currently applies.
    ///
    /// Mirrors [`expired`](Self::expired): the read deadline can only
    /// evict while nothing is in flight and no output is buffered, so
    /// while it is suppressed it must not be handed to the timer heap —
    /// re-arming an already-past instant would make the event loop's
    /// timer drain pop it again immediately and spin forever. Every
    /// state change that lifts the suppression (a completion lands, the
    /// write buffer drains) passes through the server's `settle`, which
    /// re-arms from here.
    pub fn next_deadline(&self) -> Option<Instant> {
        let read_armed = !self.in_flight && self.out.is_empty() && !self.is_peer;
        match (self.write_deadline, read_armed) {
            (Some(w), true) => Some(w.min(self.read_deadline)),
            (Some(w), false) => Some(w),
            (None, true) => Some(self.read_deadline),
            (None, false) => None,
        }
    }

    /// `true` when a deadline has passed and the connection must be
    /// evicted: a stalled write always kills; an idle expiry kills only
    /// when no request is in flight (compute time is not idle time).
    pub fn expired(&self, now: Instant) -> bool {
        if let Some(w) = self.write_deadline {
            if now >= w {
                return true;
            }
        }
        now >= self.read_deadline && !self.in_flight && self.out.is_empty() && !self.is_peer
    }

    /// Pull everything the socket has, feeding the frame parser.
    /// Complete frames land in `pending`; framing violations surface as
    /// `Err` (the caller answers Malformed and marks the conn closing).
    pub fn read_ready(&mut self) -> Result<ReadOutcome, ProtoError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadOutcome::PeerClosed),
                Ok(n) => {
                    self.acc.push(&chunk[..n]);
                    let mut completed = false;
                    while let Some(body) = self.acc.next_frame()? {
                        self.pending.push_back(body);
                        completed = true;
                    }
                    if completed {
                        self.touch_read(Instant::now());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(ReadOutcome::Open)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Ok(ReadOutcome::Failed),
            }
        }
    }

    /// Queue an encoded response frame and flush as far as the socket
    /// allows. Returns `Ok(drained)`; arms or clears the write deadline
    /// accordingly.
    pub fn queue_frame(&mut self, frame: &[u8], now: Instant) -> std::io::Result<bool> {
        self.out.push_frame(frame);
        self.flush(now)
    }

    /// Queue an encoded response frame *without* flushing: the batched
    /// event loop defers the socket write to one flush pass per poll
    /// iteration, so several frames go out in a single `writev`.
    pub fn queue_frame_deferred(&mut self, frame: Vec<u8>) {
        self.out.push_frame_owned(frame);
    }

    /// Continue writing buffered output (the `EPOLLOUT` handler).
    pub fn flush(&mut self, now: Instant) -> std::io::Result<bool> {
        let drained = self.out.write_to(&mut self.stream)?;
        if drained {
            self.write_deadline = None;
        } else if self.write_deadline.is_none() {
            self.write_deadline = Some(now + self.write_timeout);
        }
        Ok(drained)
    }

    /// `true` once everything this connection still owes has been
    /// delivered and it should be dropped: a hard close (`closing`)
    /// waits only for the write buffer; a peer EOF (`read_closed`)
    /// additionally waits for queued requests and in-flight compute.
    pub fn done(&self) -> bool {
        (self.closing && self.out.is_empty())
            || (self.read_closed
                && self.pending.is_empty()
                && !self.in_flight
                && self.out.is_empty()
                && self.poison.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_of(body: &[u8]) -> Vec<u8> {
        let mut f = (body.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn accumulator_reassembles_byte_dribbles() {
        let mut acc = FrameAccumulator::new();
        let frame = frame_of(&[1, 2, 3, 4, 5]);
        // One byte at a time: no frame until the last byte lands.
        for (i, b) in frame.iter().enumerate() {
            assert!(acc.next_frame().unwrap().is_none(), "partial at byte {i}");
            acc.push(&[*b]);
            assert!(acc.mid_frame());
        }
        assert_eq!(acc.next_frame().unwrap().unwrap(), vec![1, 2, 3, 4, 5]);
        assert!(!acc.mid_frame(), "boundary after the frame");
        assert!(acc.next_frame().unwrap().is_none());
    }

    #[test]
    fn accumulator_splits_coalesced_frames_in_order() {
        let mut acc = FrameAccumulator::new();
        let mut bytes = frame_of(&[9, 9]);
        bytes.extend_from_slice(&frame_of(&[7, 7, 7]));
        bytes.extend_from_slice(&frame_of(&[5, 5])[..3]); // partial third
        acc.push(&bytes);
        assert_eq!(acc.next_frame().unwrap().unwrap(), vec![9, 9]);
        assert_eq!(acc.next_frame().unwrap().unwrap(), vec![7, 7, 7]);
        assert!(acc.next_frame().unwrap().is_none());
        assert!(acc.mid_frame(), "third frame is mid-flight");
    }

    #[test]
    fn accumulator_rejects_bad_prefixes_permanently() {
        let mut acc = FrameAccumulator::new();
        acc.push(&1u32.to_le_bytes());
        assert_eq!(acc.next_frame(), Err(ProtoError::TooShort));
        // Poisoned: even after more bytes arrive the error persists.
        acc.push(&frame_of(&[1, 2]));
        assert_eq!(acc.next_frame(), Err(ProtoError::TooShort));

        let mut acc = FrameAccumulator::new();
        acc.push(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(acc.next_frame(), Err(ProtoError::Oversized(_))));
    }

    #[test]
    fn accumulator_compacts_consumed_bytes() {
        let mut acc = FrameAccumulator::new();
        let body = vec![0xAB; 4 << 10];
        for _ in 0..8 {
            acc.push(&frame_of(&body));
            assert_eq!(acc.next_frame().unwrap().unwrap().len(), body.len());
        }
        assert_eq!(acc.buffered(), 0);
        assert_eq!(acc.buf.len(), 0, "fully-consumed buffer is dropped");
    }

    /// A writer that accepts a fixed number of bytes per call, then
    /// signals `WouldBlock` — a socket with a tiny send buffer.
    struct Throttled {
        taken: Vec<u8>,
        per_call: usize,
        calls_left: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.calls_left == 0 {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.calls_left -= 1;
            let n = buf.len().min(self.per_call);
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_resumes_partial_writes_across_blocks() {
        let mut wb = WriteBuf::new();
        let frame = frame_of(&[1, 2, 3, 4, 5, 6, 7, 8]);
        wb.push_frame(&frame);
        let mut w = Throttled {
            taken: Vec::new(),
            per_call: 5,
            calls_left: 1,
        };
        assert!(!wb.write_to(&mut w).unwrap(), "blocked after 5 bytes");
        assert_eq!(wb.pending(), frame.len() - 5);

        // A second frame queues behind the stalled first.
        let frame2 = frame_of(&[9, 9]);
        wb.push_frame(&frame2);
        w.calls_left = 10;
        assert!(wb.write_to(&mut w).unwrap(), "drains when unblocked");
        let mut want = frame.clone();
        want.extend_from_slice(&frame2);
        assert_eq!(w.taken, want, "byte order preserved across the stall");
        assert!(wb.is_empty());
    }

    /// A writer that exercises the scatter-gather path: takes a byte
    /// budget per call across *all* slices, so partial writes can end
    /// mid-frame and mid-slice.
    struct Vectored {
        taken: Vec<u8>,
        per_call: usize,
        calls_left: usize,
    }

    impl Write for Vectored {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.write_vectored(&[std::io::IoSlice::new(buf)])
        }
        fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
            if self.calls_left == 0 {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.calls_left -= 1;
            let mut budget = self.per_call;
            let mut wrote = 0;
            for b in bufs {
                let n = b.len().min(budget);
                self.taken.extend_from_slice(&b[..n]);
                wrote += n;
                budget -= n;
                if budget == 0 {
                    break;
                }
            }
            Ok(wrote)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_vectored_preserves_frame_order_across_partial_writes() {
        let frames: Vec<Vec<u8>> = (0..5u8)
            .map(|i| frame_of(&vec![i; 3 + i as usize * 4]))
            .collect();
        let want: Vec<u8> = frames.iter().flatten().copied().collect();

        let mut wb = WriteBuf::new();
        for f in &frames {
            wb.push_frame(f);
        }
        assert_eq!(wb.frames_pending(), 5, "vectored mode keeps frames apart");
        assert_eq!(wb.pending(), want.len());

        // Partial budget cuts mid-frame; the cursor must resume exactly.
        let mut w = Vectored {
            taken: Vec::new(),
            per_call: 7,
            calls_left: 2,
        };
        assert!(!wb.write_to(&mut w).unwrap(), "blocked mid-backlog");
        assert_eq!(wb.pending(), want.len() - 14);
        w.calls_left = usize::MAX;
        assert!(wb.write_to(&mut w).unwrap(), "drains when unblocked");
        assert_eq!(w.taken, want, "bytes identical and in order");
        assert!(wb.is_empty());

        // The coalescing reference strategy produces the same bytes.
        let mut wb = WriteBuf::new();
        wb.set_coalesce();
        for f in &frames {
            wb.push_frame(f);
        }
        assert_eq!(wb.frames_pending(), 1, "coalesced into one buffer");
        assert_eq!(wb.pending(), want.len());
        let mut w = Vectored {
            taken: Vec::new(),
            per_call: 7,
            calls_left: usize::MAX,
        };
        assert!(wb.write_to(&mut w).unwrap());
        assert_eq!(w.taken, want, "coalescing strategy is byte-identical");
    }

    #[test]
    fn conn_deadlines_follow_frame_completion_not_bytes() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let t0 = Instant::now();
        let idle = Duration::from_millis(500);
        let mut conn = Conn::new(server_side, 1, t0, idle, Duration::from_secs(5));
        let d0 = conn.read_deadline;

        // Partial header: reading it must NOT move the idle deadline.
        use std::io::Write as _;
        (&client).write_all(&[0x06, 0x00]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.read_ready().unwrap(), ReadOutcome::Open);
        assert!(conn.acc.mid_frame());
        assert_eq!(conn.read_deadline, d0, "slow loris gets no extension");
        assert!(!conn.expired(t0), "not expired before the deadline");
        assert!(conn.expired(d0), "expired once the deadline passes");

        // Completing the frame restarts the clock.
        (&client).write_all(&[0x00, 0x00, 1, 1, 1, 1, 1, 1]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.read_ready().unwrap(), ReadOutcome::Open);
        assert_eq!(conn.pending.len(), 1, "frame completed");
        assert!(conn.read_deadline > d0, "deadline re-armed");

        // In-flight compute suppresses idle eviction; a stalled write
        // deadline does not.
        conn.in_flight = true;
        assert!(!conn.expired(conn.read_deadline + idle));
        conn.write_deadline = Some(t0);
        assert!(conn.expired(t0), "stalled write always evicts");
    }

    /// `next_deadline` must track `expired` exactly: whenever the read
    /// deadline cannot evict (request in flight, or buffered output),
    /// it must not be offered to the timer heap — a past instant that
    /// can never fire would spin the event loop's timer drain forever.
    #[test]
    fn next_deadline_is_suppressed_exactly_when_eviction_is() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let t0 = Instant::now();
        let idle = Duration::from_millis(100);
        let mut conn = Conn::new(server_side, 1, t0, idle, Duration::from_secs(5));

        // Idle connection: the read deadline is live.
        assert_eq!(conn.next_deadline(), Some(conn.read_deadline));

        // In flight with nothing buffered: no deadline at all, even
        // though read_deadline (an instant in the past from the heap's
        // perspective once it lapses) still holds its old value.
        conn.in_flight = true;
        assert_eq!(conn.next_deadline(), None);
        assert!(!conn.expired(conn.read_deadline + idle));

        // Buffered output: only the write deadline counts, never the
        // (possibly long-past) read deadline.
        conn.out.push_frame(&[0u8; 8]);
        let w = t0 + Duration::from_secs(5);
        conn.write_deadline = Some(w);
        assert_eq!(conn.next_deadline(), Some(w));
        conn.in_flight = false;
        assert_eq!(conn.next_deadline(), Some(w), "output alone suppresses");

        // Invariant the timer drain relies on: a live (non-expired)
        // connection's next deadline is strictly in the future.
        let lapsed = conn.read_deadline + idle;
        assert!(!conn.expired(lapsed));
        assert!(conn.next_deadline().is_none_or(|t| t > lapsed));
    }
}
