//! `repf-serve` — profiling-as-a-service over a binary wire protocol.
//!
//! A small, dependency-free TCP daemon that serves the repo's cache
//! models on demand: clients submit sparse sampling profiles
//! ([`SampleBatch`]) into named sessions, then query application or
//! per-PC miss-ratio curves at arbitrary cache sizes and full prefetch
//! plans (MDDLI delinquent-load selection + stride + distance + bypass)
//! for either their own sessions or the built-in benchmark pool.
//!
//! Layout:
//!
//! * [`proto`] — the versioned, length-prefixed frame format and every
//!   request/response type, with exact-consumption decoding.
//! * [`session`] — the LRU-evicting per-session profile store with a
//!   hard byte budget, sharded by session-name hash into independently
//!   locked slices with per-session cached StatStack fits (versioned
//!   invalidation, incremental refits).
//! * [`server`] — the daemon: a readiness-polled epoll event loop
//!   (default on Linux) or the thread-per-connection reference path
//!   (`--io-mode threads`), both over a bounded worker-pool request
//!   queue with `Busy` shedding, a `max_conns` accept cap,
//!   per-connection timeouts, malformed input rejection that never
//!   kills the process, and an eventfd-signalled drain-then-exit
//!   shutdown control message.
//! * [`conn`] — the per-connection nonblocking state machine the event
//!   loop drives: incremental frame accumulation, buffered partial
//!   writes, idle/write deadlines.
//! * [`poll`] — thin `extern "C"` wrappers over Linux
//!   `epoll`/`eventfd` (no external crates; Linux-only module).
//! * [`client`] — a blocking client with typed helpers for every
//!   request.
//! * [`metrics`] — the lock-free server metrics registry behind the
//!   `Stats` request and `BENCH_serve.json`.
//! * [`trace_file`] — versioned binary trace files capturing request
//!   frames for record/replay.
//! * [`replay`] — the deterministic multi-node record/replay harness:
//!   seeded trace generation, ring-partitioned replay against 1..N
//!   daemons (with optional mid-trace node drain/join churn), a direct
//!   StatStack/analyze oracle and a divergence reporter that dumps the
//!   minimal offending request prefix.
//! * [`ring`] — the seeded consistent-hash ring with virtual nodes that
//!   owns session → node placement for every party (daemons, replay,
//!   loadgen, CLI).
//! * [`cluster`] — the cluster tier: ring epochs, the peer connection
//!   pool, request forwarding, live session migration with tombstone
//!   chasing, and the losers-first membership orchestrator.

pub mod client;
pub mod cluster;
pub mod conn;
pub mod loadgen;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod proto;
pub mod replay;
pub mod ring;
pub mod server;
pub mod session;
pub mod tinylfu;
pub mod trace_file;

pub use client::{Client, ClientError};
pub use cluster::{
    apply_membership, ClusterState, NodeAck, RingChangeReport, RingSpec, Route, MAX_FORWARD_HOPS,
};
pub use loadgen::{
    fd_budget, generate_ops, op_session_name, preflight_fd_budget, request_for, run_load,
    LoadConfig, LoadReport, Op, OpKind, OpMix, ServerStatsDelta, ZipfGen, FD_RESERVE,
};
pub use metrics::{LatencyHisto, LogHisto, Metrics};
pub use proto::{
    ErrorCode, MachineId, ModelWire, PlanWire, ProtoError, Request, Response, SampleBatch, Target,
    PROTO_VERSION,
};
pub use ring::{Ring, DEFAULT_RING_SEED, DEFAULT_VNODES};
pub use replay::{
    generate_trace, replay_against, replay_clustered, replay_spawned, ChurnEvent, Divergence,
    GenConfig, Oracle, ReplayConfig, ReplayReport, ReplayRng, RingChange,
};
pub use server::{
    resolve_io_mode, resolve_max_conns, resolve_shards, resolve_store_policy, start, IoMode,
    ServeConfig, ServerHandle,
};
pub use session::{
    SessionExport, ShardStats, ShardedSessionStore, SessionStore, StorePolicy, SubmitOutcome,
    SubmitRejected,
};
pub use tinylfu::{Doorkeeper, FreqSketch, TinyLfu};
pub use trace_file::{Trace, TraceError, TraceRecorder, TRACE_MAGIC, TRACE_VERSION};
