//! The server-side metrics registry: request/error/busy counters,
//! per-query-class latency histograms, plan-cache hit/miss and session
//! eviction counts — `bench/src/obs.rs`-style observability for the
//! daemon, exposed through the `Stats` request and dumped into
//! `BENCH_serve.json` by the loopback benchmark.
//!
//! Everything is lock-free atomics so the request workers never contend
//! on telemetry.
//!
//! Latency accounting is HDR-style log-bucketing shared by two types:
//! [`LatencyHisto`] (atomic, embedded in [`Metrics`]) and [`LogHisto`]
//! (plain counters, mergeable — what the load generator aggregates
//! across driver threads). Both use the same bucket geometry
//! ([`log_bucket_index`] / [`log_bucket_value`]): power-of-two octaves
//! subdivided into 32 linear sub-buckets, so quantiles carry ≤ ~3%
//! relative error instead of the old pure-power-of-two ≤ 2×.

use repf_metrics::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Request classes tracked separately (indexes into the counter arrays).
pub const REQUEST_KINDS: [&str; 15] = [
    "ping",
    "submit",
    "mrc",
    "pc_mrc",
    "plan",
    "co_run",
    "place",
    "stats",
    "shutdown",
    "ring_get",
    "ring_set",
    "peer_forward",
    "session_import",
    "model_pull",
    "model_pull_current",
];

fn kind_index(kind: &str) -> usize {
    REQUEST_KINDS
        .iter()
        .position(|&k| k == kind)
        .unwrap_or(REQUEST_KINDS.len() - 1)
}

/// Linear sub-buckets per power-of-two octave: `2^SUB_BITS`.
const SUB_BITS: u32 = 5;
/// Bucket count covering the whole `u64` range at `SUB_BITS` precision.
pub const LOG_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// The bucket a value lands in: exact below `2^(SUB_BITS+1)`, then 32
/// linear sub-buckets per octave (relative width < 1/32). Monotone in
/// `v`, and contiguous across the exact/log boundary.
pub fn log_bucket_index(v: u64) -> usize {
    let v = v.max(1);
    let o = 63 - v.leading_zeros();
    if o <= SUB_BITS {
        v as usize
    } else {
        (((o - SUB_BITS) as usize) << SUB_BITS) + (v >> (o - SUB_BITS)) as usize
    }
}

/// The lower edge of bucket `i` — the inverse of [`log_bucket_index`]
/// up to bucket resolution (`log_bucket_value(log_bucket_index(v)) <= v`).
pub fn log_bucket_value(i: usize) -> u64 {
    let sub = 1usize << SUB_BITS;
    if i < 2 * sub {
        i as u64
    } else {
        let k = (i >> SUB_BITS) as u32; // >= 2
        ((sub + (i & (sub - 1))) as u64) << (k - 1)
    }
}

/// A mergeable log-bucketed latency histogram (microseconds) with no
/// atomics: each load-generator driver records into its own and the
/// harness merges them at the end. Same bucket geometry as
/// [`LatencyHisto`], so server-side and client-side quantiles agree.
#[derive(Clone)]
pub struct LogHisto {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LogHisto {
    fn default() -> Self {
        LogHisto {
            buckets: vec![0; LOG_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LogHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record_us(&mut self, us: u64) {
        let b = log_bucket_index(us).min(self.buckets.len() - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_us as f64 / self.count as f64
    }

    /// Quantile (`q` in `[0, 1]`) in µs: the lower edge of the bucket
    /// containing the rank-`⌈q·n⌉` sample (≤ ~3% relative error).
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return log_bucket_value(i) as f64;
            }
        }
        0.0
    }

    /// Fold `other` into `self` bucket-wise. Merging is associative and
    /// commutative, so per-thread histograms can be combined in any
    /// order without changing any quantile.
    pub fn merge(&mut self, other: &LogHisto) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// A log-bucketed latency histogram over microseconds, shared-writer
/// safe (atomic buckets). Same geometry as [`LogHisto`]: exact buckets
/// below 64 µs, then 32 linear sub-buckets per power-of-two octave, so
/// quantiles are read as the lower edge of the rank's bucket with
/// ≤ ~3% relative error.
pub struct LatencyHisto {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto {
            buckets: (0..LOG_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHisto {
    /// Record one sample.
    pub fn record_us(&self, us: u64) {
        let b = log_bucket_index(us).min(self.buckets.len() - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Approximate quantile (`q` in `[0, 1]`) in µs: the lower edge of
    /// the bucket containing the rank-`⌈q·n⌉` sample.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return log_bucket_value(i) as f64;
            }
        }
        0.0
    }
}

/// The daemon's metrics registry.
#[derive(Default)]
pub struct Metrics {
    requests: [AtomicU64; REQUEST_KINDS.len()],
    /// Error responses sent (any code).
    pub errors: AtomicU64,
    /// Busy responses sent (queue full).
    pub busy: AtomicU64,
    /// Malformed frames / payloads rejected.
    pub malformed: AtomicU64,
    /// Connections accepted (cumulative).
    pub connections: AtomicU64,
    /// Connections currently open (accepted minus closed; gauge).
    pub open_conns: AtomicU64,
    /// Connections shed at accept time because `max_conns` was reached.
    pub shed: AtomicU64,
    /// `accept()` failures (EMFILE and friends; each one also triggers
    /// the acceptor's backoff).
    pub accept_errors: AtomicU64,
    /// Sessions evicted from the store.
    pub evictions: AtomicU64,
    /// Session-store bytes (gauge, updated after each submit).
    pub store_bytes: AtomicU64,
    /// Benchmark plan queries answered from an already-computed plan.
    pub plan_hits: AtomicU64,
    /// Benchmark plan queries that forced a profile + analysis.
    pub plan_misses: AtomicU64,
    /// Session queries answered from the cached StatStack fit.
    pub model_hits: AtomicU64,
    /// Session queries that (re)fitted the model.
    pub model_misses: AtomicU64,
    /// Batched-epoll deferred flush passes that pushed bytes to a socket.
    pub io_batch_flushes: AtomicU64,
    /// Response frames written by those batched flushes.
    pub io_batch_flush_frames: AtomicU64,
    /// Completion-queue drains that took the whole queue in one lock.
    pub io_batch_completion_drains: AtomicU64,
    /// Completions moved by those drains.
    pub io_batch_completions: AtomicU64,
    /// Worker-pool jobs submitted carrying a batch of decoded frames.
    pub io_batch_dispatch_jobs: AtomicU64,
    /// Decoded request frames dispatched inside those jobs.
    pub io_batch_dispatch_frames: AtomicU64,
    /// Requests this node forwarded to a peer (misdirected arrivals).
    pub cluster_forwarded: AtomicU64,
    /// Forwarded requests this node received and handled for a peer.
    pub cluster_peer_requests: AtomicU64,
    /// Ring adoptions that had at least one session to migrate away.
    pub cluster_migrations_started: AtomicU64,
    /// Migration sweeps that moved every departing session successfully.
    pub cluster_migrations_completed: AtomicU64,
    /// Sessions shipped to their new owner across all sweeps.
    pub cluster_migrated_sessions: AtomicU64,
    /// Model-cache entries received from peers (migration or pull)
    /// instead of being refit locally.
    pub cluster_model_remote_hits: AtomicU64,
    /// Ring epoch in force (gauge; 0 = un-clustered).
    pub cluster_ring_epoch: AtomicU64,
    /// Ring member count (gauge).
    pub cluster_ring_nodes: AtomicU64,
    /// This node's ring ownership share, in parts-per-million (gauge).
    pub cluster_ring_share_ppm: AtomicU64,
    /// Search-tree nodes explored across all placement queries.
    pub placement_nodes_explored: AtomicU64,
    /// Branches cut by the placement bound across all queries.
    pub placement_pruned: AtomicU64,
    /// Latency of MRC-class queries (application and per-PC).
    pub mrc_latency: LatencyHisto,
    /// Latency of co-run queries (includes any remote model pulls).
    pub corun_latency: LatencyHisto,
    /// Latency of placement searches (includes model resolution).
    pub placement_latency: LatencyHisto,
    /// Latency of plan queries.
    pub plan_latency: LatencyHisto,
    /// Latency of submits.
    pub submit_latency: LatencyHisto,
    /// Per-session migration pause (export → peer import → removal).
    pub migration_latency: LatencyHisto,
}

impl Metrics {
    /// Fresh registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one request of `kind` (a [`Request::kind_name`] label).
    ///
    /// [`Request::kind_name`]: crate::proto::Request::kind_name
    pub fn count_request(&self, kind: &str) {
        self.requests[kind_index(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one session model-cache outcome.
    pub fn count_model_cache(&self, hit: bool) {
        if hit {
            self.model_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.model_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests seen for `kind`.
    pub fn requests_of(&self, kind: &str) -> u64 {
        self.requests[kind_index(kind)].load(Ordering::Relaxed)
    }

    /// Total requests across all kinds.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot as ordered `(name, value)` pairs — the `Stats` response
    /// payload. Latencies report count/mean/p50/p99 per query class.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (i, kind) in REQUEST_KINDS.iter().enumerate() {
            out.push((
                format!("requests.{kind}"),
                self.requests[i].load(Ordering::Relaxed) as f64,
            ));
        }
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        out.push(("errors".into(), g(&self.errors)));
        out.push(("busy".into(), g(&self.busy)));
        out.push(("malformed".into(), g(&self.malformed)));
        out.push(("connections".into(), g(&self.connections)));
        out.push(("connections.open".into(), g(&self.open_conns)));
        out.push(("connections.shed".into(), g(&self.shed)));
        out.push(("accept.errors".into(), g(&self.accept_errors)));
        out.push(("sessions.evictions".into(), g(&self.evictions)));
        out.push(("sessions.store_bytes".into(), g(&self.store_bytes)));
        out.push(("plan_cache.hits".into(), g(&self.plan_hits)));
        out.push(("plan_cache.misses".into(), g(&self.plan_misses)));
        out.push(("model_cache.hits".into(), g(&self.model_hits)));
        out.push(("model_cache.misses".into(), g(&self.model_misses)));
        out.push(("io.batch.flushes".into(), g(&self.io_batch_flushes)));
        out.push(("io.batch.flush_frames".into(), g(&self.io_batch_flush_frames)));
        out.push((
            "io.batch.completion_drains".into(),
            g(&self.io_batch_completion_drains),
        ));
        out.push(("io.batch.completions".into(), g(&self.io_batch_completions)));
        out.push(("io.batch.dispatch_jobs".into(), g(&self.io_batch_dispatch_jobs)));
        out.push((
            "io.batch.dispatch_frames".into(),
            g(&self.io_batch_dispatch_frames),
        ));
        out.push(("cluster.forwarded".into(), g(&self.cluster_forwarded)));
        out.push(("cluster.peer_requests".into(), g(&self.cluster_peer_requests)));
        out.push((
            "cluster.migrations.started".into(),
            g(&self.cluster_migrations_started),
        ));
        out.push((
            "cluster.migrations.completed".into(),
            g(&self.cluster_migrations_completed),
        ));
        out.push((
            "cluster.migrations.sessions".into(),
            g(&self.cluster_migrated_sessions),
        ));
        out.push((
            "cluster.model.remote_hits".into(),
            g(&self.cluster_model_remote_hits),
        ));
        out.push(("cluster.ring.epoch".into(), g(&self.cluster_ring_epoch)));
        out.push(("cluster.ring.nodes".into(), g(&self.cluster_ring_nodes)));
        out.push((
            "cluster.ring.share_ppm".into(),
            g(&self.cluster_ring_share_ppm),
        ));
        out.push((
            "placement.nodes_explored".into(),
            g(&self.placement_nodes_explored),
        ));
        out.push(("placement.pruned".into(), g(&self.placement_pruned)));
        for (label, h) in [
            ("mrc", &self.mrc_latency),
            ("corun", &self.corun_latency),
            ("placement", &self.placement_latency),
            ("plan", &self.plan_latency),
            ("submit", &self.submit_latency),
            ("migration", &self.migration_latency),
        ] {
            out.push((format!("latency.{label}.count"), h.count() as f64));
            out.push((format!("latency.{label}.mean_us"), h.mean_us()));
            out.push((format!("latency.{label}.p50_us"), h.quantile_us(0.50)));
            out.push((format!("latency.{label}.p99_us"), h.quantile_us(0.99)));
        }
        out
    }

    /// The snapshot as a JSON object (for `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.snapshot()
                .into_iter()
                .map(|(k, v)| (k, Json::Num(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_invertible_at_boundaries() {
        // Exact region: every value below 2^(SUB_BITS+1) is its own bucket.
        for v in 1..64u64 {
            assert_eq!(log_bucket_index(v), v as usize, "exact below 64");
            assert_eq!(log_bucket_value(log_bucket_index(v)), v);
        }
        // Octave boundaries: powers of two map to their own bucket's
        // lower edge, and the index is monotone across each boundary.
        let mut prev = 0usize;
        for shift in 1..63u32 {
            let v = 1u64 << shift;
            for probe in [v - 1, v, v + 1] {
                let i = log_bucket_index(probe);
                assert!(i >= prev, "monotone at {probe}");
                prev = i;
                assert!(
                    log_bucket_value(i) <= probe,
                    "lower edge property at {probe}"
                );
            }
            assert_eq!(log_bucket_value(log_bucket_index(v)), v, "pow2 {v} exact");
        }
        // Relative bucket width stays below 1/32 in the log region.
        for &v in &[100u64, 999, 12_345, 1 << 20, (1 << 40) + 12_345] {
            let edge = log_bucket_value(log_bucket_index(v));
            assert!(edge <= v && (v - edge) as f64 <= v as f64 / 32.0, "width at {v}");
        }
        // u64::MAX must stay in range.
        assert!(log_bucket_index(u64::MAX) < LOG_BUCKETS);
    }

    #[test]
    fn log_histo_quantiles_on_known_distribution() {
        let mut h = LogHisto::new();
        // 1000 samples: 1..=1000 µs exactly once each. True p50 = 500,
        // p99 = 990, p999 = 999; bucketed answers within 1/32.
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_us(), 1000);
        assert!((h.mean_us() - 500.5).abs() < 1e-9);
        for (q, truth) in [(0.50, 500.0), (0.99, 990.0), (0.999, 999.0)] {
            let got = h.quantile_us(q);
            assert!(
                got <= truth && got >= truth * (1.0 - 1.0 / 32.0) - 1.0,
                "q{q}: got {got}, truth {truth}"
            );
        }
        // Degenerate distribution: every quantile is the single value's
        // bucket edge.
        let mut one = LogHisto::new();
        for _ in 0..100 {
            one.record_us(777);
        }
        let edge = log_bucket_value(log_bucket_index(777)) as f64;
        assert_eq!(one.quantile_us(0.5), edge);
        assert_eq!(one.quantile_us(0.999), edge);
        assert_eq!(LogHisto::new().quantile_us(0.99), 0.0, "empty histo");
    }

    #[test]
    fn log_histo_merge_is_associative() {
        let mk = |seed: u64, n: u64| {
            let mut h = LogHisto::new();
            let mut x = seed;
            for _ in 0..n {
                // splitmix64 step, same recipe as replay's RNG
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                h.record_us((z ^ (z >> 31)) % 1_000_000);
            }
            h
        };
        let (a, b, c) = (mk(1, 500), mk(2, 300), mk(3, 700));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.max_us(), right.max_us());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(left.quantile_us(q), right.quantile_us(q), "q{q}");
        }
        assert!((left.mean_us() - right.mean_us()).abs() < 1e-9);
    }

    #[test]
    fn latency_histo_agrees_with_log_histo() {
        // The atomic server-side histogram and the mergeable client-side
        // one share bucket math: identical samples → identical quantiles.
        let atomic = LatencyHisto::default();
        let mut plain = LogHisto::new();
        for us in [1u64, 3, 17, 64, 65, 100, 999, 1000, 4096, 100_000] {
            atomic.record_us(us);
            plain.record_us(us);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(atomic.quantile_us(q), plain.quantile_us(q), "q{q}");
        }
        assert_eq!(atomic.count(), plain.count());
        assert!((atomic.mean_us() - plain.mean_us()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHisto::default();
        for us in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        assert!(h.mean_us() > 100.0 && h.mean_us() < 110.0);
        assert_eq!(h.quantile_us(0.5), 1.0, "p50 is the exact 1 µs bucket");
        // p99 rank = ceil(0.99*10) = 10 → the 1000 µs sample's bucket
        // [992, 1024) → lower edge 992 (≤ ~3% error, vs 512 under the
        // old pure-power-of-two buckets).
        assert_eq!(h.quantile_us(0.99), 992.0);
        assert_eq!(LatencyHisto::default().quantile_us(0.5), 0.0);
    }

    #[test]
    fn request_counters_by_kind() {
        let m = Metrics::new();
        m.count_request("ping");
        m.count_request("plan");
        m.count_request("plan");
        assert_eq!(m.requests_of("plan"), 2);
        assert_eq!(m.requests_of("ping"), 1);
        assert_eq!(m.total_requests(), 3);
        let snap = m.snapshot();
        let plan = snap.iter().find(|(k, _)| k == "requests.plan").unwrap();
        assert_eq!(plan.1, 2.0);
    }

    #[test]
    fn snapshot_renders_as_json() {
        let m = Metrics::new();
        m.errors.fetch_add(1, Ordering::Relaxed);
        let s = m.to_json().render();
        assert!(s.contains("\"errors\":1"));
        assert!(s.contains("\"latency.mrc.p99_us\""));
        assert!(s.contains("\"io.batch.flushes\""));
    }
}
