//! The server-side metrics registry: request/error/busy counters,
//! per-query-class latency histograms, plan-cache hit/miss and session
//! eviction counts — `bench/src/obs.rs`-style observability for the
//! daemon, exposed through the `Stats` request and dumped into
//! `BENCH_serve.json` by the loopback benchmark.
//!
//! Everything is lock-free atomics so the request workers never contend
//! on telemetry.

use repf_metrics::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Request classes tracked separately (indexes into the counter arrays).
pub const REQUEST_KINDS: [&str; 7] =
    ["ping", "submit", "mrc", "pc_mrc", "plan", "stats", "shutdown"];

fn kind_index(kind: &str) -> usize {
    REQUEST_KINDS
        .iter()
        .position(|&k| k == kind)
        .unwrap_or(REQUEST_KINDS.len() - 1)
}

/// A power-of-two-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` µs (bucket 0 also takes
/// sub-microsecond samples), so 40 buckets span sub-µs to ~12 days.
/// Quantiles are read as the lower edge of the bucket holding the
/// requested rank — a ≤ 2× overestimate-free approximation, plenty for
/// p50/p99 trend tracking.
pub struct LatencyHisto {
    buckets: [AtomicU64; 40],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHisto {
    /// Record one sample.
    pub fn record_us(&self, us: u64) {
        let b = (64 - us.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Approximate quantile (`q` in `[0, 1]`) in µs: the lower edge of
    /// the bucket containing the rank-`⌈q·n⌉` sample.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0.0 } else { (1u64 << i) as f64 };
            }
        }
        0.0
    }
}

/// The daemon's metrics registry.
#[derive(Default)]
pub struct Metrics {
    requests: [AtomicU64; REQUEST_KINDS.len()],
    /// Error responses sent (any code).
    pub errors: AtomicU64,
    /// Busy responses sent (queue full).
    pub busy: AtomicU64,
    /// Malformed frames / payloads rejected.
    pub malformed: AtomicU64,
    /// Connections accepted (cumulative).
    pub connections: AtomicU64,
    /// Connections currently open (accepted minus closed; gauge).
    pub open_conns: AtomicU64,
    /// Connections shed at accept time because `max_conns` was reached.
    pub shed: AtomicU64,
    /// `accept()` failures (EMFILE and friends; each one also triggers
    /// the acceptor's backoff).
    pub accept_errors: AtomicU64,
    /// Sessions evicted from the store.
    pub evictions: AtomicU64,
    /// Session-store bytes (gauge, updated after each submit).
    pub store_bytes: AtomicU64,
    /// Benchmark plan queries answered from an already-computed plan.
    pub plan_hits: AtomicU64,
    /// Benchmark plan queries that forced a profile + analysis.
    pub plan_misses: AtomicU64,
    /// Session queries answered from the cached StatStack fit.
    pub model_hits: AtomicU64,
    /// Session queries that (re)fitted the model.
    pub model_misses: AtomicU64,
    /// Latency of MRC-class queries (application and per-PC).
    pub mrc_latency: LatencyHisto,
    /// Latency of plan queries.
    pub plan_latency: LatencyHisto,
    /// Latency of submits.
    pub submit_latency: LatencyHisto,
}

impl Metrics {
    /// Fresh registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one request of `kind` (a [`Request::kind_name`] label).
    ///
    /// [`Request::kind_name`]: crate::proto::Request::kind_name
    pub fn count_request(&self, kind: &str) {
        self.requests[kind_index(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one session model-cache outcome.
    pub fn count_model_cache(&self, hit: bool) {
        if hit {
            self.model_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.model_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests seen for `kind`.
    pub fn requests_of(&self, kind: &str) -> u64 {
        self.requests[kind_index(kind)].load(Ordering::Relaxed)
    }

    /// Total requests across all kinds.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot as ordered `(name, value)` pairs — the `Stats` response
    /// payload. Latencies report count/mean/p50/p99 per query class.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (i, kind) in REQUEST_KINDS.iter().enumerate() {
            out.push((
                format!("requests.{kind}"),
                self.requests[i].load(Ordering::Relaxed) as f64,
            ));
        }
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        out.push(("errors".into(), g(&self.errors)));
        out.push(("busy".into(), g(&self.busy)));
        out.push(("malformed".into(), g(&self.malformed)));
        out.push(("connections".into(), g(&self.connections)));
        out.push(("connections.open".into(), g(&self.open_conns)));
        out.push(("connections.shed".into(), g(&self.shed)));
        out.push(("accept.errors".into(), g(&self.accept_errors)));
        out.push(("sessions.evictions".into(), g(&self.evictions)));
        out.push(("sessions.store_bytes".into(), g(&self.store_bytes)));
        out.push(("plan_cache.hits".into(), g(&self.plan_hits)));
        out.push(("plan_cache.misses".into(), g(&self.plan_misses)));
        out.push(("model_cache.hits".into(), g(&self.model_hits)));
        out.push(("model_cache.misses".into(), g(&self.model_misses)));
        for (label, h) in [
            ("mrc", &self.mrc_latency),
            ("plan", &self.plan_latency),
            ("submit", &self.submit_latency),
        ] {
            out.push((format!("latency.{label}.count"), h.count() as f64));
            out.push((format!("latency.{label}.mean_us"), h.mean_us()));
            out.push((format!("latency.{label}.p50_us"), h.quantile_us(0.50)));
            out.push((format!("latency.{label}.p99_us"), h.quantile_us(0.99)));
        }
        out
    }

    /// The snapshot as a JSON object (for `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.snapshot()
                .into_iter()
                .map(|(k, v)| (k, Json::Num(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHisto::default();
        for us in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        assert!(h.mean_us() > 100.0 && h.mean_us() < 110.0);
        assert_eq!(h.quantile_us(0.5), 0.0, "p50 sits in the first bucket");
        // p99 rank = ceil(0.99*10) = 10 → the 1000 µs sample's bucket
        // [512, 1024) → lower edge 512.
        assert_eq!(h.quantile_us(0.99), 512.0);
        assert_eq!(LatencyHisto::default().quantile_us(0.5), 0.0);
    }

    #[test]
    fn request_counters_by_kind() {
        let m = Metrics::new();
        m.count_request("ping");
        m.count_request("plan");
        m.count_request("plan");
        assert_eq!(m.requests_of("plan"), 2);
        assert_eq!(m.requests_of("ping"), 1);
        assert_eq!(m.total_requests(), 3);
        let snap = m.snapshot();
        let plan = snap.iter().find(|(k, _)| k == "requests.plan").unwrap();
        assert_eq!(plan.1, 2.0);
    }

    #[test]
    fn snapshot_renders_as_json() {
        let m = Metrics::new();
        m.errors.fetch_add(1, Ordering::Relaxed);
        let s = m.to_json().render();
        assert!(s.contains("\"errors\":1"));
        assert!(s.contains("\"latency.mrc.p99_us\""));
    }
}
