//! Tests of the AMD-vs-Intel behavioural contrasts the paper leans on
//! (§VII-A), plus timing-model invariants under the machine presets.

use repf_sim::{amd_phenom_ii, intel_i7_2600k, prepare, run_policy, CoreSetup, Policy, Sim};
use repf_trace::patterns::{PointerChase, PointerChaseCfg, StridedStream, StridedStreamCfg};
use repf_trace::{Pc, TraceSourceExt};
use repf_workloads::{BenchmarkId, BuildOptions};

fn opts() -> BuildOptions {
    BuildOptions {
        refs_scale: 0.4,
        ..Default::default()
    }
}

fn chase_setup(machine_hw: bool, m: &repf_sim::MachineConfig) -> CoreSetup {
    // A fully random 64 B-node chase — spatial prefetching bait.
    let src = PointerChase::new(PointerChaseCfg {
        chase_pc: Pc(0),
        payload_pcs: vec![],
        base: 0,
        node_bytes: 64,
        nodes: 1 << 18,
        steps_per_pass: 1 << 18,
        passes: 4,
        seed: 3,
        run_len: 1,
    })
    .take_refs(200_000)
    .cycle();
    CoreSetup {
        source: Box::new(src),
        base_cpr: 3.0,
        plan: None,
        hw: machine_hw.then(|| m.make_hw_prefetcher()),
        target_refs: 200_000,
    }
}

#[test]
fn intel_adjacent_line_doubles_chase_traffic_amd_does_not() {
    let amd = amd_phenom_ii();
    let intel = intel_i7_2600k();
    let amd_base = Sim::run_solo(&amd, chase_setup(false, &amd));
    let amd_hw = Sim::run_solo(&amd, chase_setup(true, &amd));
    let intel_base = Sim::run_solo(&intel, chase_setup(false, &intel));
    let intel_hw = Sim::run_solo(&intel, chase_setup(true, &intel));

    let amd_inc =
        amd_hw.stats.dram_read_bytes as f64 / amd_base.stats.dram_read_bytes as f64 - 1.0;
    let intel_inc =
        intel_hw.stats.dram_read_bytes as f64 / intel_base.stats.dram_read_bytes as f64 - 1.0;
    assert!(
        amd_inc < 0.1,
        "AMD has no spatial prefetcher: chase traffic ~flat ({amd_inc:+.2})"
    );
    // Every miss fetches a buddy, but since the chase revisits all nodes
    // each pass, buddies that survive in the LLC until their turn become
    // hits — the observed inflation is ~half the issued buddies.
    assert!(
        intel_inc > 0.35,
        "Intel buddy-fetches inflate chase traffic ({intel_inc:+.2})"
    );
}

#[test]
fn both_machines_prefer_software_on_the_same_benchmarks() {
    // mcf's SW-over-HW win (Fig 4) holds on both machines.
    for m in [amd_phenom_ii(), intel_i7_2600k()] {
        let plans = prepare(BenchmarkId::Mcf, &m, &opts());
        let hw = run_policy(BenchmarkId::Mcf, &m, &plans, Policy::Hardware, &opts());
        let sw = run_policy(BenchmarkId::Mcf, &m, &plans, Policy::SoftwareNt, &opts());
        assert!(
            sw.cycles <= hw.cycles,
            "{}: mcf favours accurate software prefetching ({} vs {})",
            m.name,
            sw.cycles,
            hw.cycles
        );
    }
}

#[test]
fn intel_is_faster_in_wall_clock_for_the_same_work() {
    // Higher frequency + bigger caches: Intel finishes the same workload
    // in less *time* even when cycle counts are close.
    let amd = amd_phenom_ii();
    let intel = intel_i7_2600k();
    let run = |m: &repf_sim::MachineConfig| {
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 26, 64, 1))
            .take_refs(100_000)
            .cycle();
        let out = Sim::run_solo(
            m,
            CoreSetup {
                source: Box::new(src),
                base_cpr: 2.0,
                plan: None,
                hw: None,
                target_refs: 100_000,
            },
        );
        m.seconds(out.cycles)
    };
    assert!(run(&intel) < run(&amd));
}

#[test]
fn stall_accounting_is_consistent() {
    // cycles == base_cpr·refs + stalls (+ sw prefetch cost, zero here).
    let m = amd_phenom_ii();
    let src = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 26, 64, 1))
        .take_refs(50_000)
        .cycle();
    let out = Sim::run_solo(
        &m,
        CoreSetup {
            source: Box::new(src),
            base_cpr: 2.0,
            plan: None,
            hw: None,
            target_refs: 50_000,
        },
    );
    let expect = 2.0 * out.refs as f64 + out.stall_cycles as f64;
    assert!(
        (out.cycles as f64 - expect).abs() < 2.0,
        "cycles {} vs base+stall {expect}",
        out.cycles
    );
}

#[test]
fn sw_prefetch_cost_is_charged_per_executed_prefetch() {
    use repf_core::{PrefetchDirective, PrefetchPlan};
    let m = amd_phenom_ii();
    // A hot loop that never misses: the plan's only effect is the α tax.
    let mk = |plan: Option<PrefetchPlan>| {
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 4096, 64, 1 << 20))
            .take_refs(50_000)
            .cycle();
        Sim::run_solo(
            &m,
            CoreSetup {
                source: Box::new(src),
                base_cpr: 2.0,
                plan,
                hw: None,
                target_refs: 50_000,
            },
        )
    };
    let mut plan = PrefetchPlan::empty();
    plan.insert(
        Pc(0),
        PrefetchDirective {
            distance_bytes: 128,
            nta: false,
            stride: 64,
        },
    );
    let base = mk(None);
    let tax = mk(Some(plan));
    assert_eq!(tax.sw_prefetches, 50_000);
    let dc = tax.cycles as i64 - base.cycles as i64;
    assert!(
        (dc - 50_000).abs() < 2_000,
        "α = 1 cycle per executed prefetch ({dc} extra cycles)"
    );
}
