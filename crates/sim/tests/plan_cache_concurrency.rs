//! Concurrency suite for the shared [`PlanCache`]: many threads hammer a
//! lazy cache at once, and each (benchmark, machine) plan must be
//! profiled and analyzed **exactly once**, with every reader seeing the
//! same plan (pointer-identical — the compute-once slot hands out one
//! value, it never re-derives).

use repf_sim::{amd_phenom_ii, prepare, PlanCache};
use repf_workloads::{BenchmarkId, BuildOptions};
use std::thread;

const SCALE: f64 = 0.01;

fn opts() -> BuildOptions {
    BuildOptions {
        refs_scale: SCALE,
        ..Default::default()
    }
}

#[test]
fn plans_compute_exactly_once_under_contention() {
    let machine = amd_phenom_ii();
    let cache = PlanCache::lazy(&machine, &opts());
    let ids = BenchmarkId::all();

    // 16 threads × all benchmarks × several rounds, all racing get().
    // Each thread records the plan addresses it observed.
    let per_thread: Vec<Vec<usize>> = thread::scope(|s| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                s.spawn(|| {
                    let mut seen = Vec::new();
                    for _round in 0..3 {
                        for &id in &ids {
                            seen.push(cache.get(id) as *const _ as usize);
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one computation per benchmark, no matter how many callers
    // raced.
    assert_eq!(cache.computed_count(), ids.len());

    // Every reader saw the same plan for each benchmark, in every round.
    let reference = &per_thread[0][..ids.len()];
    for (t, seen) in per_thread.iter().enumerate() {
        for (k, addr) in seen.iter().enumerate() {
            assert_eq!(
                *addr,
                reference[k % ids.len()],
                "thread {t} observed a different plan for {:?}",
                ids[k % ids.len()]
            );
        }
    }
}

#[test]
fn contended_plans_match_a_fresh_serial_preparation() {
    let machine = amd_phenom_ii();
    let cache = PlanCache::lazy(&machine, &opts());
    let ids = BenchmarkId::all();

    // Warm the cache from many threads at once...
    thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for &id in &ids {
                    cache.get(id);
                }
            });
        }
    });

    // ...then check the winning values against an uncontended pipeline.
    for &id in &ids {
        let fresh = prepare(id, &machine, &opts());
        let cached = cache.get(id);
        assert_eq!(cached.plan_nt.pcs(), fresh.plan_nt.pcs(), "{id}");
        assert_eq!(cached.baseline.cycles, fresh.baseline.cycles, "{id}");
    }
    assert_eq!(cache.computed_count(), ids.len());
}

#[test]
fn lazy_cache_only_computes_what_is_asked_for() {
    let machine = amd_phenom_ii();
    let cache = PlanCache::lazy(&machine, &opts());
    assert_eq!(cache.computed_count(), 0);
    cache.get(BenchmarkId::Mcf);
    cache.get(BenchmarkId::Mcf);
    assert_eq!(cache.computed_count(), 1);
}
