//! # repf-sim
//!
//! The multicore timing simulator that plays the role of the paper's two
//! evaluation machines (Table II):
//!
//! * [`machine`] — per-machine configuration: cache geometry, effective
//!   latencies, DRAM bandwidth, frequency and the hardware-prefetcher
//!   flavour (AMD Phenom II-like and Intel i7-2600K-like presets);
//! * [`policy`] — the five prefetch policies of the evaluation: baseline
//!   (no prefetching), hardware prefetching, software prefetching with and
//!   without cache bypassing, and the stride-centric prior-work baseline;
//! * [`runner`] — the core timing loop: in-order cores with a base
//!   cycles-per-reference cost plus demand-visible memory stalls, software
//!   prefetch issue (α = 1 cycle per executed prefetch instruction) and
//!   hardware prefetcher training;
//! * [`solo`] — profile → analyze → plan → run pipelines for
//!   single-benchmark experiments (Figures 4–6, Table I);
//! * [`mixes`] — the 180 random 4-application mixed workloads (Figures
//!   7–11) and parallel workloads (Figure 12);
//! * [`exec`] — the parallel evaluation engine: a deterministic worker
//!   pool (`REPF_THREADS`) that fans independent simulation cells out
//!   across cores with results bit-identical to the serial path.
//!
//! ## Timing model
//!
//! Latencies are *effective* (demand-visible) values: real out-of-order
//! cores overlap a large part of each miss with independent work and other
//! misses, so the configured L2/LLC/DRAM stall values are calibrated as
//! `raw latency / typical MLP`, not DRAM datasheet numbers. Bandwidth is
//! modelled exactly (line transfers occupy the shared channel), so
//! saturation and queueing — the contention effects the paper's multicore
//! results hinge on — emerge naturally.

pub mod adaptive;
pub mod exec;
pub mod machine;
pub mod mixes;
pub mod policy;
pub mod runner;
pub mod solo;

pub use adaptive::{run_adaptive, run_adaptive_many, AdaptiveConfig, AdaptiveOutcome};
pub use exec::{Exec, PoolJob, SubmitError, WorkerPool};
pub use machine::{amd_phenom_ii, intel_i7_2600k, HwPfKind, MachineConfig};
pub use mixes::{generate_mixes, random_inputs, run_mix, MixOutcome, MixSpec, PlanCache};
pub use policy::Policy;
pub use runner::{CoreSetup, Sim, SoloOutcome};
pub use solo::{prepare, prepare_parallel, run_policy, BenchPlans, ParallelPlans};
