//! The five prefetch policies of the evaluation (Figures 4–7).


/// Prefetching policy for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Original program, hardware prefetching off — the paper's baseline
    /// for every experiment (§VII).
    Baseline,
    /// Hardware prefetching on (the machine's preset), no software
    /// prefetches.
    Hardware,
    /// The MDDLI-filtered software prefetching *without* cache bypassing
    /// ("Software Pref." in Figure 4).
    Software,
    /// Full scheme with non-temporal bypassing ("Soft. Pref.+NT").
    SoftwareNt,
    /// The prior-work stride-centric baseline (§VI-D).
    StrideCentric,
    /// Hardware prefetching *and* the software plan together. The paper
    /// (§VIII-B, confirming Lee et al.) found the combination can hurt
    /// and avoids it; this policy exists to reproduce that observation
    /// (see the `ablations` binary) and is not part of the figure set.
    Combined,
}

impl Policy {
    /// The five policies of the paper's figures (excludes the
    /// [`Combined`](Policy::Combined) ablation).
    pub fn all() -> [Policy; 5] {
        [
            Policy::Baseline,
            Policy::Hardware,
            Policy::Software,
            Policy::SoftwareNt,
            Policy::StrideCentric,
        ]
    }

    /// Figure-legend name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Baseline => "Baseline",
            Policy::Hardware => "Hardware Pref.",
            Policy::Software => "Software Pref.",
            Policy::SoftwareNt => "Soft. Pref.+NT",
            Policy::StrideCentric => "Stride-centric",
            Policy::Combined => "HW+SW combined",
        }
    }

    /// Does this policy run the machine's hardware prefetcher? (The
    /// paper's figures never combine hardware and software prefetching —
    /// Lee et al. and the authors' own experiments found the combination
    /// hurts, §VIII-B; [`Policy::Combined`] reproduces that finding.)
    pub fn uses_hardware(&self) -> bool {
        matches!(self, Policy::Hardware | Policy::Combined)
    }

    /// Does this policy apply a software prefetch plan?
    pub fn uses_software(&self) -> bool {
        matches!(
            self,
            Policy::Software | Policy::SoftwareNt | Policy::StrideCentric | Policy::Combined
        )
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusivity_of_mechanisms_in_the_figure_set() {
        for p in Policy::all() {
            assert!(
                !(p.uses_hardware() && p.uses_software()),
                "{p}: the figures never combine HW and SW prefetching"
            );
        }
        assert!(!Policy::Baseline.uses_hardware());
        assert!(!Policy::Baseline.uses_software());
        assert!(Policy::Hardware.uses_hardware());
        assert!(Policy::SoftwareNt.uses_software());
        // The ablation policy is the one exception, outside the figure set.
        assert!(Policy::Combined.uses_hardware() && Policy::Combined.uses_software());
        assert!(!Policy::all().contains(&Policy::Combined));
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(Policy::SoftwareNt.to_string(), "Soft. Pref.+NT");
        assert_eq!(Policy::all().len(), 5);
    }
}
