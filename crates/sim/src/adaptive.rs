//! Online profile-guided adaptation — the extension the paper points at
//! when it argues its framework "could enable runtime optimization
//! methods such as dynamic binary rewriting" (§I) and contrasts itself
//! with online schemes like Beyler & Clauss (§VIII-B.3).
//!
//! The adaptive runner executes the program in windows. Each window is
//! sampled with the same sparse reuse/stride sampler the offline pass
//! uses; at the window boundary the full MDDLI analysis re-runs and the
//! prefetch plan is swapped in-place (the moral equivalent of re-writing
//! the prefetch instructions in a running binary). A program whose
//! behaviour shifts between phases — or whose input differs from the
//! profiled one — converges to a fresh plan within one window, at the
//! cost of the sampling overhead being paid *online*.

use crate::machine::MachineConfig;
use crate::runner::{CoreSetup, Sim};
use repf_core::{analyze, PrefetchPlan};
use repf_sampling::{Sampler, SamplerConfig};
use repf_trace::source::Recorded;
use repf_trace::TraceSource;

/// Parameters of the online adaptation loop.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// References per adaptation window (re-analysis period).
    pub window_refs: u64,
    /// Online sampling period inside each window.
    pub sample_period: u64,
    /// Seed for the online sampler.
    pub seed: u64,
    /// Per-trap cost charged to the running program, in cycles — this is
    /// the price an online scheme pays that the paper's offline pass does
    /// not (its related-work section reports 14 % online overhead for
    /// UMI-style schemes).
    pub trap_cost_cycles: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window_refs: 200_000,
            sample_period: 509,
            seed: 0xADA7,
            trap_cost_cycles: 120.0,
        }
    }
}

/// Outcome of an adaptive run.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// Timing/traffic of the whole run (windows summed).
    pub cycles: u64,
    /// References executed.
    pub refs: u64,
    /// Off-chip read bytes.
    pub dram_read_bytes: u64,
    /// Number of re-analysis points taken.
    pub replans: usize,
    /// Plan sizes after each window (diagnostics: shows convergence and
    /// phase changes).
    pub plan_sizes: Vec<usize>,
    /// Cycles charged for online sampling traps.
    pub sampling_overhead_cycles: u64,
}

/// Run `source` adaptively on one core of `machine`.
///
/// `base_cpr` is the workload's compute cost per reference (as in
/// [`CoreSetup`]). The run ends when the source ends.
pub fn run_adaptive(
    machine: &MachineConfig,
    mut source: Box<dyn TraceSource>,
    base_cpr: f64,
    cfg: &AdaptiveConfig,
) -> AdaptiveOutcome {
    assert!(cfg.window_refs > 0);
    let mut plan = PrefetchPlan::empty();
    let mut out = AdaptiveOutcome {
        cycles: 0,
        refs: 0,
        dram_read_bytes: 0,
        replans: 0,
        plan_sizes: Vec::new(),
        sampling_overhead_cycles: 0,
    };

    loop {
        // Collect the next window (the "live" instruction stream).
        let mut window = Vec::with_capacity(cfg.window_refs as usize);
        for _ in 0..cfg.window_refs {
            match source.next_ref() {
                Some(r) => window.push(r),
                None => break,
            }
        }
        if window.is_empty() {
            break;
        }
        let n = window.len() as u64;

        // Execute the window under the current plan. Each window uses a
        // fresh memory system: windows are long relative to cache warmup,
        // and this keeps the runner reusable. (A production implementation
        // would keep cache state; the comparison below applies the same
        // treatment to both static and adaptive runs.)
        let exec = Sim::run_solo(
            machine,
            CoreSetup {
                source: Box::new(Recorded::new(window.clone())),
                base_cpr,
                plan: Some(plan.clone()),
                hw: None,
                target_refs: n,
            },
        );
        out.cycles += exec.cycles;
        out.refs += exec.refs;
        out.dram_read_bytes += exec.stats.dram_read_bytes;

        // Sample the window we just ran (online monitoring) and pay for
        // the traps.
        let profile = Sampler::new(SamplerConfig {
            sample_period: cfg.sample_period,
            line_bytes: machine.hierarchy.l1.line_bytes,
            seed: cfg.seed ^ out.replans as u64,
        })
        .profile(&mut Recorded::new(window));
        let traps = profile.traps.total();
        let overhead = (traps as f64 * cfg.trap_cost_cycles) as u64;
        out.cycles += overhead;
        out.sampling_overhead_cycles += overhead;

        // Re-plan for the next window.
        let delta = (exec.cycles - exec.stall_cycles) as f64 / n as f64 + machine.sw_prefetch_cost;
        let analysis = analyze(&profile, &machine.analysis_config(delta.max(1.0)));
        plan = analysis.plan;
        out.replans += 1;
        out.plan_sizes.push(plan.len());

        if (n as usize) < cfg.window_refs as usize {
            break; // source ended mid-window
        }
    }
    out
}

/// Run several adaptive configurations over the same program on the
/// evaluation engine's worker pool. `make_source` builds a fresh copy of
/// the program for each cell (adaptive runs consume their source), so
/// every cell is independent and the outcomes are identical to running
/// the configurations one after another.
pub fn run_adaptive_many<F>(
    machine: &MachineConfig,
    cfgs: &[AdaptiveConfig],
    make_source: F,
    base_cpr: f64,
    exec: &crate::exec::Exec,
) -> Vec<AdaptiveOutcome>
where
    F: Fn() -> Box<dyn TraceSource> + Sync,
{
    exec.map(cfgs, |_, cfg| run_adaptive(machine, make_source(), base_cpr, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::amd_phenom_ii;
    use repf_trace::patterns::{StridedStream, StridedStreamCfg};
    use repf_trace::{Pc, TraceSourceExt};

    /// A two-phase program: streams over region A, then (new PCs) over
    /// region B. An offline plan from phase A knows nothing about B.
    fn two_phase(refs_per_phase: u64) -> Box<dyn TraceSource> {
        let a = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 28, 64, 8))
            .take_refs(refs_per_phase);
        let b = StridedStream::new(StridedStreamCfg::loads(Pc(50), 1 << 40, 1 << 28, 64, 8))
            .take_refs(refs_per_phase);
        struct Concat(Box<dyn TraceSource>, Box<dyn TraceSource>, bool);
        impl TraceSource for Concat {
            fn next_ref(&mut self) -> Option<repf_trace::MemRef> {
                if !self.2 {
                    if let Some(r) = self.0.next_ref() {
                        return Some(r);
                    }
                    self.2 = true;
                }
                self.1.next_ref()
            }
            fn reset(&mut self) {
                self.0.reset();
                self.1.reset();
                self.2 = false;
            }
        }
        Box::new(Concat(Box::new(a), Box::new(b), false))
    }

    #[test]
    fn adaptive_covers_a_phase_change() {
        let m = amd_phenom_ii();
        let cfg = AdaptiveConfig {
            window_refs: 100_000,
            ..Default::default()
        };
        let out = run_adaptive(&m, two_phase(300_000), 3.0, &cfg);
        assert_eq!(out.refs, 600_000);
        assert_eq!(out.replans, 6);
        // Every window after the first in each phase has a plan for the
        // phase's stream.
        assert!(
            out.plan_sizes.iter().all(|&s| s >= 1),
            "each window finds the active stream: {:?}",
            out.plan_sizes
        );
        assert!(out.sampling_overhead_cycles > 0, "online monitoring is not free");
    }

    #[test]
    fn adaptive_beats_a_stale_static_plan_across_the_phase_change() {
        let m = amd_phenom_ii();
        // Static plan: profile phase A only (what an offline pass would
        // have seen), then run both phases with it.
        let mut phase_a = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 28, 64, 8))
            .take_refs(300_000);
        let profile = Sampler::new(SamplerConfig {
            sample_period: 509,
            line_bytes: 64,
            seed: 1,
        })
        .profile(&mut phase_a);
        let stale = analyze(&profile, &m.analysis_config(4.0)).plan;
        assert!(stale.get(Pc(0)).is_some() && stale.get(Pc(50)).is_none());

        let static_out = Sim::run_solo(
            &m,
            CoreSetup {
                source: two_phase(300_000),
                base_cpr: 3.0,
                plan: Some(stale),
                hw: None,
                target_refs: 600_000,
            },
        );
        let adaptive = run_adaptive(
            &m,
            two_phase(300_000),
            3.0,
            &AdaptiveConfig {
                // Windows must be shorter than a phase for re-planning to
                // track it (three windows per phase here).
                window_refs: 100_000,
                ..Default::default()
            },
        );
        assert!(
            adaptive.cycles < static_out.cycles,
            "adaptation pays off across the phase change ({} vs {})",
            adaptive.cycles,
            static_out.cycles
        );
    }

    #[test]
    fn stable_programs_converge_to_a_stable_plan() {
        let m = amd_phenom_ii();
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(3), 0, 1 << 28, 16, 4))
            .take_refs(500_000);
        let out = run_adaptive(&m, Box::new(src), 2.0, &AdaptiveConfig::default());
        assert!(out.replans >= 2);
        let last = *out.plan_sizes.last().unwrap();
        assert!(
            out.plan_sizes[1..].iter().all(|&s| s == last),
            "plan stabilizes after the first window: {:?}",
            out.plan_sizes
        );
    }
}
