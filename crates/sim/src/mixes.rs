//! Mixed-workload experiments: the 180 random 4-application mixes of
//! §VII-C/D (Figures 7–11).

use crate::machine::MachineConfig;
use crate::policy::Policy;
use crate::runner::{CoreSetup, Sim, SoloOutcome};
use crate::solo::{prepare, BenchPlans};
use crate::exec::Exec;
use repf_trace::rng::XorShift64Star;
use repf_trace::TraceSourceExt;
use repf_workloads::{build, BenchmarkId, BuildOptions, InputSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One 4-application mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixSpec {
    /// The four co-running benchmarks (duplicates allowed, as in random
    /// selection with replacement).
    pub apps: [BenchmarkId; 4],
}

/// Generate `n` random mixes the way the paper does: "each mix contains
/// four randomly selected workloads" from the 12-benchmark pool.
pub fn generate_mixes(n: usize, seed: u64) -> Vec<MixSpec> {
    let pool = BenchmarkId::all();
    let mut rng = XorShift64Star::new(seed);
    (0..n)
        .map(|_| {
            let mut apps = [pool[0]; 4];
            for a in &mut apps {
                *a = pool[rng.below(pool.len() as u64) as usize];
            }
            MixSpec { apps }
        })
        .collect()
}

/// Profiles + plans for every benchmark on one machine, computed once and
/// shared across all mixes (the paper gathers one profile per benchmark).
///
/// The cache is safe to share across the evaluation engine's worker
/// threads: each (benchmark, machine) slot is a compute-once cell, so a
/// plan is profiled and analyzed exactly once no matter how many workers
/// ask for it concurrently, and every reader sees the same plan.
pub struct PlanCache {
    machine: MachineConfig,
    opts: BuildOptions,
    slots: Vec<OnceLock<BenchPlans>>,
    /// Per-benchmark StatStack fits over the cached profiles, computed on
    /// first MRC query (the serving layer's hook — plan computation alone
    /// never needs them).
    models: Vec<OnceLock<repf_statstack::StatStackModel>>,
    computed: AtomicUsize,
}

impl PlanCache {
    /// An empty cache for `machine`: plans are profiled and analyzed on
    /// first use (exactly once per benchmark, even under contention).
    pub fn lazy(machine: &MachineConfig, opts: &BuildOptions) -> Self {
        PlanCache {
            machine: *machine,
            opts: *opts,
            slots: BenchmarkId::all().iter().map(|_| OnceLock::new()).collect(),
            models: BenchmarkId::all().iter().map(|_| OnceLock::new()).collect(),
            computed: AtomicUsize::new(0),
        }
    }

    /// Profile and analyze all 12 benchmarks for `machine`, fanning the
    /// profiling passes out over the [`Exec::from_env`] worker pool.
    pub fn build(machine: &MachineConfig, opts: &BuildOptions) -> Self {
        Self::build_with(machine, opts, &Exec::from_env())
    }

    /// [`PlanCache::build`] with an explicit engine.
    pub fn build_with(machine: &MachineConfig, opts: &BuildOptions, exec: &Exec) -> Self {
        let cache = Self::lazy(machine, opts);
        exec.map(&BenchmarkId::all(), |_, &id| {
            cache.get(id);
        });
        cache
    }

    fn slot(&self, id: BenchmarkId) -> &OnceLock<BenchPlans> {
        let ix = BenchmarkId::all()
            .iter()
            .position(|&b| b == id)
            .expect("benchmark in pool");
        &self.slots[ix]
    }

    /// Plans for one benchmark, computing them on first use.
    pub fn get(&self, id: BenchmarkId) -> &BenchPlans {
        self.slot(id).get_or_init(|| {
            self.computed.fetch_add(1, Ordering::Relaxed);
            prepare(id, &self.machine, &self.opts)
        })
    }

    /// Plans for one benchmark if they are already computed — a
    /// non-forcing [`get`](Self::get), so callers (e.g. the serve daemon's
    /// metrics) can distinguish cache hits from first-time computes.
    pub fn peek(&self, id: BenchmarkId) -> Option<&BenchPlans> {
        self.slot(id).get()
    }

    /// A StatStack model fitted over `id`'s cached profile, computed once
    /// on first use (forces the plans if needed). This is the hook the
    /// serve daemon answers benchmark-target MRC queries through: the fit
    /// is shared across all concurrent queries of the same benchmark.
    pub fn model(&self, id: BenchmarkId) -> &repf_statstack::StatStackModel {
        let ix = BenchmarkId::all()
            .iter()
            .position(|&b| b == id)
            .expect("benchmark in pool");
        self.models[ix]
            .get_or_init(|| repf_statstack::StatStackModel::from_profile(&self.get(id).profile))
    }

    /// How many plans have been computed (used by the concurrency suite to
    /// prove the compute-once guarantee).
    pub fn computed_count(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// The machine this cache profiles for.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }
}

/// Result of one mix run.
#[derive(Clone, Debug)]
pub struct MixOutcome {
    /// Per-application outcomes, snapshotted when each app completed its
    /// target references.
    pub per_app: Vec<SoloOutcome>,
}

impl MixOutcome {
    /// Total off-chip read traffic of the mix (bytes, summed over the
    /// apps at their completion points).
    pub fn total_read_bytes(&self) -> u64 {
        self.per_app.iter().map(|o| o.stats.dram_read_bytes).sum()
    }

    /// Total off-chip traffic including writebacks.
    pub fn total_bytes(&self) -> u64 {
        self.per_app.iter().map(|o| o.stats.dram_total_bytes()).sum()
    }

    /// Completion time of the whole mix (slowest app).
    pub fn makespan_cycles(&self) -> u64 {
        self.per_app.iter().map(|o| o.cycles).max().unwrap_or(0)
    }

    /// Aggregate average bandwidth over the mix's lifetime in GB/s.
    pub fn avg_bandwidth_gbps(&self, machine: &MachineConfig) -> f64 {
        machine.gb_per_s(self.total_bytes(), self.makespan_cycles())
    }

    /// Per-app speedups against a baseline mix run (`base[i].cycles /
    /// self[i].cycles`).
    pub fn speedups_vs(&self, base: &MixOutcome) -> Vec<f64> {
        base.per_app
            .iter()
            .zip(&self.per_app)
            .map(|(b, p)| repf_metrics::speedup(b.cycles, p.cycles))
            .collect()
    }
}

/// Run one mix under `policy`. `inputs[i]` selects each app's input set
/// (all `Ref` for §VII-C, randomized for the §VII-D study); plans always
/// come from the `Ref`-input profile, as in the paper.
pub fn run_mix(
    spec: &MixSpec,
    machine: &MachineConfig,
    policy: Policy,
    cache: &PlanCache,
    inputs: [InputSet; 4],
    refs_scale: f64,
) -> MixOutcome {
    let setups: Vec<CoreSetup> = spec
        .apps
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let opts = BuildOptions {
                input: inputs[i],
                // Disjoint per-core address spaces: cores contend for LLC
                // sets and DRAM bandwidth, never for lines.
                addr_offset: ((i + 1) as u64) << 45,
                refs_scale,
            };
            let w = build(id, &opts);
            let base_cpr = w.base_cpr;
            let target_refs = w.nominal_refs;
            let plans = cache.get(id);
            let plan = match policy {
                Policy::Baseline | Policy::Hardware => None,
                Policy::Software => Some(plans.plan_plain.clone()),
                Policy::SoftwareNt | Policy::Combined => Some(plans.plan_nt.clone()),
                Policy::StrideCentric => Some(plans.stride_centric.clone()),
            };
            let hw = policy
                .uses_hardware()
                .then(|| machine.make_hw_prefetcher());
            CoreSetup {
                source: Box::new(w.cycle()),
                base_cpr,
                plan,
                hw,
                target_refs,
            }
        })
        .collect();
    MixOutcome {
        per_app: Sim::run_mix(machine, setups),
    }
}

/// Random per-app alternate inputs for the §VII-D study.
pub fn random_inputs(seed: u64) -> [InputSet; 4] {
    let mut rng = XorShift64Star::new(seed);
    let mut out = [InputSet::Ref; 4];
    for o in &mut out {
        *o = InputSet::Alt(rng.below(4) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::amd_phenom_ii;

    #[test]
    fn mix_generation_is_deterministic_and_diverse() {
        let a = generate_mixes(180, 42);
        let b = generate_mixes(180, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 180);
        // All 12 benchmarks appear somewhere.
        let mut seen = std::collections::BTreeSet::new();
        for m in &a {
            for app in m.apps {
                seen.insert(app.name());
            }
        }
        assert_eq!(seen.len(), 12);
        // Different seeds give different mixes.
        assert_ne!(generate_mixes(10, 1), generate_mixes(10, 2));
    }

    #[test]
    fn random_inputs_are_alternates() {
        let i = random_inputs(7);
        assert!(i.iter().all(|x| matches!(x, InputSet::Alt(_))));
        assert_eq!(random_inputs(7), random_inputs(7));
    }

    #[test]
    fn small_mix_runs_end_to_end() {
        let m = amd_phenom_ii();
        let opts = BuildOptions {
            refs_scale: 0.02,
            ..Default::default()
        };
        let cache = PlanCache::build(&m, &opts);
        let spec = MixSpec {
            apps: [
                BenchmarkId::Libquantum,
                BenchmarkId::Mcf,
                BenchmarkId::Cigar,
                BenchmarkId::Gcc,
            ],
        };
        let base = run_mix(&spec, &m, Policy::Baseline, &cache, [InputSet::Ref; 4], 0.02);
        let sw = run_mix(&spec, &m, Policy::SoftwareNt, &cache, [InputSet::Ref; 4], 0.02);
        assert_eq!(base.per_app.len(), 4);
        let speedups = sw.speedups_vs(&base);
        assert_eq!(speedups.len(), 4);
        let ws = repf_metrics::weighted_speedup(&speedups);
        assert!(
            ws > 0.9,
            "software prefetching should not tank the mix: {ws}"
        );
        assert!(base.total_read_bytes() > 0);
        assert!(base.avg_bandwidth_gbps(&m) > 0.0);
        assert!(base.makespan_cycles() >= base.per_app[0].cycles);
    }

    #[test]
    fn mix_runs_are_deterministic() {
        let m = amd_phenom_ii();
        let opts = BuildOptions {
            refs_scale: 0.01,
            ..Default::default()
        };
        let cache = PlanCache::build(&m, &opts);
        let spec = MixSpec {
            apps: [
                BenchmarkId::Lbm,
                BenchmarkId::Lbm,
                BenchmarkId::Xalan,
                BenchmarkId::Milc,
            ],
        };
        let run = || {
            run_mix(&spec, &m, Policy::Hardware, &cache, [InputSet::Ref; 4], 0.01)
                .per_app
                .iter()
                .map(|o| o.cycles)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
