//! Single-benchmark pipelines: sampling pass → analysis → plans → policy
//! runs. This is the programmatic form of the paper's Figure 1 framework
//! plus the §VII evaluation flow.

use crate::machine::MachineConfig;
use crate::policy::Policy;
use crate::runner::{CoreSetup, Sim, SoloOutcome};
use repf_core::{analyze, stride_centric_plan, Analysis, PrefetchPlan};
use repf_sampling::{Profile, Sampler, SamplerConfig};
use repf_trace::TraceSourceExt;
use repf_workloads::{build, BenchmarkId, BuildOptions, ParallelId, Workload};

/// Everything the profiling + analysis passes produce for one benchmark
/// on one machine.
pub struct BenchPlans {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Measured average cycles per memory operation (Δ) from the baseline
    /// run — the paper measures this with performance counters (§VI-A).
    pub delta: f64,
    /// Full MDDLI analysis (delinquent loads, rejections, plan).
    pub analysis: Analysis,
    /// The full plan with non-temporal hints ("Soft. Pref.+NT").
    pub plan_nt: PrefetchPlan,
    /// The same plan with NT hints stripped ("Software Pref.").
    pub plan_plain: PrefetchPlan,
    /// The stride-centric baseline plan.
    pub stride_centric: PrefetchPlan,
    /// The sampling profile (reused by Table I / coverage reporting).
    pub profile: Profile,
    /// Baseline solo outcome (reused as the speedup denominator).
    pub baseline: SoloOutcome,
}

fn workload_setup(w: Workload, policy: Policy, plans: Option<&BenchPlans>, machine: &MachineConfig) -> CoreSetup {
    let base_cpr = w.base_cpr;
    let target_refs = w.nominal_refs;
    let plan = plans.and_then(|p| match policy {
        Policy::Baseline | Policy::Hardware => None,
        Policy::Software => Some(p.plan_plain.clone()),
        Policy::SoftwareNt | Policy::Combined => Some(p.plan_nt.clone()),
        Policy::StrideCentric => Some(p.stride_centric.clone()),
    });
    let hw = policy
        .uses_hardware()
        .then(|| machine.make_hw_prefetcher());
    CoreSetup {
        source: Box::new(w.cycle()),
        base_cpr,
        plan,
        hw,
        target_refs,
    }
}

/// Run the sampling pass and both analyses for `id` on `machine`.
///
/// The profile is gathered on the `opts.input` input (use [`InputSet::Ref`]
/// for the paper's methodology — plans are then reused unchanged for
/// alternate inputs in the §VII-D study).
///
/// [`InputSet::Ref`]: repf_workloads::InputSet::Ref
/// How much longer the profiling window is than one timed run. Reuse
/// edges that span a full pass over a large data structure (e.g. a
/// table's pass-to-pass reuse) only complete if the window covers at
/// least two passes; the paper profiles entire SPEC executions, which are
/// ~10⁵ passes long, so a generous window is the faithful scaled-down
/// analog.
pub const PROFILE_WINDOW: f64 = 5.0;

pub fn prepare(id: BenchmarkId, machine: &MachineConfig, opts: &BuildOptions) -> BenchPlans {
    // Step 1-2: integrated sampling pass, over a window several nominal
    // runs long (see [`PROFILE_WINDOW`]).
    let profile_opts = BuildOptions {
        refs_scale: opts.refs_scale * PROFILE_WINDOW,
        ..*opts
    };
    let mut w = build(id, &profile_opts);
    let sampler = Sampler::new(SamplerConfig {
        sample_period: machine.profile_period,
        line_bytes: machine.hierarchy.l1.line_bytes,
        seed: 0x5a3b_0000 ^ id as u64,
    });
    let profile = sampler.profile(&mut w);

    // Baseline run: speedup denominator and the measured Δ.
    let baseline = Sim::run_solo(
        machine,
        workload_setup(build(id, opts), Policy::Baseline, None, machine),
    );
    // Δ: average cycles per memory operation *once the stalls the
    // prefetches are meant to remove are gone* — i.e. the compute floor
    // plus the prefetch instruction itself. The paper measures Δ with
    // performance counters on real (latency-overlapping) hardware; the
    // blocking baseline of this simulator would inflate it several-fold
    // and make every prefetch distance too short, so we use the hit-CPI
    // of the baseline run instead (documented substitution, DESIGN.md).
    let delta = (baseline.cycles - baseline.stall_cycles) as f64 / baseline.refs.max(1) as f64
        + machine.sw_prefetch_cost;

    // Steps 3-6: model, MDDLI, stride analysis, distances, bypassing.
    let cfg = machine.analysis_config(delta);
    let analysis = analyze(&profile, &cfg);
    let plan_nt = analysis.plan.clone();
    let plan_plain = plan_nt.without_nta();
    let stride_centric = stride_centric_plan(&profile, &cfg);

    BenchPlans {
        id,
        delta,
        analysis,
        plan_nt,
        plan_plain,
        stride_centric,
        profile,
        baseline,
    }
}

/// Run `id` solo under `policy`, using the prepared plans.
pub fn run_policy(
    id: BenchmarkId,
    machine: &MachineConfig,
    plans: &BenchPlans,
    policy: Policy,
    opts: &BuildOptions,
) -> SoloOutcome {
    let w = build(id, opts);
    Sim::run_solo(machine, workload_setup(w, policy, Some(plans), machine))
}

/// Plans for a parallel workload: profile one thread (SPMD code — every
/// thread executes the same loads), analyze, and the plan applies to all
/// threads.
pub struct ParallelPlans {
    /// Plan with NT hints.
    pub plan_nt: PrefetchPlan,
    /// Measured Δ of the single-thread baseline.
    pub delta: f64,
}

/// Profile + analyze a parallel workload on `machine`.
pub fn prepare_parallel(
    id: ParallelId,
    machine: &MachineConfig,
    opts: &BuildOptions,
) -> ParallelPlans {
    let mut threads = repf_workloads::build_parallel(id, 1, opts);
    let w = threads.remove(0);
    let base_cpr = w.base_cpr;
    let target = w.nominal_refs;
    let mut sampled = repf_workloads::build_parallel(id, 1, opts).remove(0);
    let sampler = Sampler::new(SamplerConfig {
        sample_period: machine.profile_period,
        line_bytes: machine.hierarchy.l1.line_bytes,
        seed: 0x7a11 ^ (id as u64) << 8,
    });
    let profile = sampler.profile(&mut sampled);
    let baseline = Sim::run_solo(
        machine,
        CoreSetup {
            source: Box::new(w.cycle()),
            base_cpr,
            plan: None,
            hw: None,
            target_refs: target,
        },
    );
    let delta = (baseline.cycles - baseline.stall_cycles) as f64 / baseline.refs.max(1) as f64
        + machine.sw_prefetch_cost;
    let cfg = machine.analysis_config(delta);
    let analysis = analyze(&profile, &cfg);
    ParallelPlans {
        plan_nt: analysis.plan,
        delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{amd_phenom_ii, intel_i7_2600k};

    fn opts() -> BuildOptions {
        BuildOptions {
            refs_scale: 0.05, // 100k refs: fast but representative
            ..Default::default()
        }
    }

    #[test]
    fn libquantum_pipeline_end_to_end() {
        let m = amd_phenom_ii();
        let plans = prepare(BenchmarkId::Libquantum, &m, &opts());
        assert!(plans.delta > 1.0, "Δ includes stalls: {}", plans.delta);
        assert!(
            !plans.plan_nt.is_empty(),
            "the streaming load must be planned"
        );
        assert!(
            plans.plan_nt.nta_count() > 0,
            "pure streams get NT prefetches"
        );
        let sw = run_policy(BenchmarkId::Libquantum, &m, &plans, Policy::SoftwareNt, &opts());
        assert!(
            sw.cycles < plans.baseline.cycles,
            "software prefetching speeds libquantum up ({} vs {})",
            sw.cycles,
            plans.baseline.cycles
        );
    }

    #[test]
    fn omnetpp_gets_little_prefetching() {
        let m = intel_i7_2600k();
        let plans = prepare(BenchmarkId::Omnetpp, &m, &opts());
        // The chase PC dominates misses but is irregular.
        assert!(
            plans.plan_nt.len() <= 4,
            "only the strided slivers are planned: {:?}",
            plans.plan_nt.pcs()
        );
    }

    #[test]
    fn stride_centric_plans_more_loads_than_mddli() {
        let m = amd_phenom_ii();
        let plans = prepare(BenchmarkId::Gcc, &m, &opts());
        assert!(
            plans.stride_centric.len() >= plans.plan_nt.len(),
            "stride-centric has no cost-benefit filter ({} vs {})",
            plans.stride_centric.len(),
            plans.plan_nt.len()
        );
    }

    #[test]
    fn hardware_policy_runs() {
        let m = intel_i7_2600k();
        let plans = prepare(BenchmarkId::Lbm, &m, &opts());
        let hw = run_policy(BenchmarkId::Lbm, &m, &plans, Policy::Hardware, &opts());
        assert!(hw.cycles < plans.baseline.cycles, "streamer helps lbm");
        assert!(hw.stats.prefetches_issued > 0);
        assert_eq!(hw.sw_prefetches, 0);
    }

    #[test]
    fn parallel_prepare_produces_plan_for_swim() {
        let m = intel_i7_2600k();
        let p = prepare_parallel(
            ParallelId::Swim,
            &m,
            &BuildOptions {
                refs_scale: 0.05,
                ..Default::default()
            },
        );
        assert!(!p.plan_nt.is_empty(), "swim's streams are prefetchable");
        assert!(p.delta > 1.0);
    }
}
