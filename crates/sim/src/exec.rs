//! The parallel evaluation engine: a deterministic fan-out scheduler for
//! independent simulation cells (solo runs, mix × policy cells, profiling
//! passes).
//!
//! Every unit of work the harness fans out is a pure function of its
//! inputs — a mix spec, a seed, a machine config and a shared, read-only
//! [`PlanCache`](crate::PlanCache) — so running cells on a worker pool
//! changes *nothing* about their results: outputs are collected by index
//! and returned in submission order, bit-identical to the serial path
//! regardless of thread count. The only shared mutable state anywhere in
//! the fan-out is the compute-once plan cache, which guarantees
//! exactly-one initialization per (benchmark, machine) key.
//!
//! Thread count is taken from `REPF_THREADS` (default: all available
//! cores); `REPF_THREADS=1` recovers the fully serial path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Worker-pool handle. Cheap to construct; holds no threads between
/// calls (workers are scoped to each [`Exec::map`] invocation).
#[derive(Clone, Copy, Debug)]
pub struct Exec {
    threads: usize,
}

impl Exec {
    /// An engine with an explicit worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Exec {
            threads: threads.max(1),
        }
    }

    /// An engine sized by `REPF_THREADS`, defaulting to the machine's
    /// available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("REPF_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Exec::new(threads)
    }

    /// A single-threaded engine: the reference serial path.
    pub fn serial() -> Self {
        Exec::new(1)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `f(i, &items[i])` for every item on the worker pool and
    /// return the results in item order.
    ///
    /// Work is handed out through a shared atomic cursor, so thread
    /// scheduling decides only *which worker* computes a cell, never what
    /// the cell computes — each result is a pure function of `(i, item)`.
    /// With one worker (or one item) no threads are spawned at all.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, T)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(i, item)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                indexed.extend(h.join().expect("evaluation worker panicked"));
            }
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, v)| v).collect()
    }

    /// Evaluate a fixed set of heterogeneous jobs concurrently and return
    /// their results in job order. Convenience wrapper over [`Exec::map`]
    /// for "run these N closures" call sites.
    pub fn run_jobs<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        // FnOnce jobs can't go through `map` (it borrows items), so hand
        // each job its own slot via the same cursor pattern.
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return jobs.into_iter().map(|j| j()).collect();
        }
        let slots: Vec<std::sync::Mutex<Option<F>>> = jobs
            .into_iter()
            .map(|j| std::sync::Mutex::new(Some(j)))
            .collect();
        let results = self.map(&slots, |_, slot| {
            let job = slot.lock().unwrap().take().expect("job taken twice");
            job()
        });
        results
    }
}

/// A boxed unit of work for the long-lived [`WorkerPool`].
pub type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// Why a job could not be enqueued on a [`WorkerPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — the caller should shed load (e.g.
    /// answer `Busy`) rather than block or buffer unboundedly.
    Busy,
    /// The pool has been shut down and accepts no further work.
    Closed,
}

/// A long-lived worker pool with a *bounded* job queue — the daemon-side
/// counterpart of [`Exec::map`] (which scopes its workers to one call).
///
/// Jobs are `FnOnce` closures handed out to `threads` workers through a
/// `sync_channel` of depth `queue_depth`. [`try_submit`](Self::try_submit)
/// never blocks: when the queue is full it returns [`SubmitError::Busy`]
/// so callers can degrade gracefully instead of growing memory without
/// bound. Dropping the pool (or calling [`shutdown`](Self::shutdown))
/// closes the queue and joins the workers after they *drain* all jobs
/// already accepted.
pub struct WorkerPool {
    tx: Option<SyncSender<PoolJob>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool with `threads` workers (clamped to ≥ 1) and a queue holding
    /// at most `queue_depth` pending jobs (clamped to ≥ 1).
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = sync_channel::<PoolJob>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the lock only while dequeuing, never while
                    // running a job.
                    let job = match rx.lock().unwrap().recv() {
                        Ok(j) => j,
                        Err(_) => break, // queue closed and drained
                    };
                    job();
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            threads,
        }
    }

    /// A pool sized like `exec` (one worker per engine thread).
    pub fn sized_by(exec: &Exec, queue_depth: usize) -> Self {
        Self::new(exec.threads(), queue_depth)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueue `job` without blocking.
    pub fn try_submit(&self, job: PoolJob) -> Result<(), SubmitError> {
        match &self.tx {
            None => Err(SubmitError::Closed),
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err(SubmitError::Busy),
                Err(TrySendError::Disconnected(_)) => Err(SubmitError::Closed),
            },
        }
    }

    /// Close the queue and join every worker after the already-accepted
    /// jobs finish (drain semantics). Idempotent via `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            h.join().expect("worker-pool thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Exec::new(threads).map(&items, |_, &x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_passes_matching_indices() {
        let items = vec!["a", "b", "c", "d"];
        let got = Exec::new(4).map(&items, |i, &s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let e = Exec::new(8);
        assert_eq!(e.map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(e.map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(Exec::new(0).threads(), 1);
        assert!(Exec::from_env().threads() >= 1);
    }

    #[test]
    fn worker_pool_runs_jobs_and_drains_on_shutdown() {
        use std::sync::atomic::AtomicU64;
        let pool = WorkerPool::new(3, 64);
        assert_eq!(pool.threads(), 3);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=50u64 {
            let sum = Arc::clone(&sum);
            pool.try_submit(Box::new(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            }))
            .expect("queue has room");
        }
        pool.shutdown(); // joins after draining every accepted job
        assert_eq!(sum.load(Ordering::Relaxed), 50 * 51 / 2);
    }

    #[test]
    fn worker_pool_sheds_load_when_queue_is_full() {
        // One worker blocked on a gate; queue depth 1: the first job
        // occupies the worker, the second fills the queue, the third must
        // be refused with `Busy`.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let pool = WorkerPool::new(1, 1);
        let g = Arc::clone(&gate);
        pool.try_submit(Box::new(move || {
            g.wait();
        }))
        .unwrap();
        // Wait until the worker has *dequeued* the gated job, otherwise
        // this submit may race for the queue slot.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match pool.try_submit(Box::new(|| {})) {
                Ok(()) => break,
                Err(SubmitError::Busy) if std::time::Instant::now() < deadline => {
                    std::thread::yield_now()
                }
                Err(e) => panic!("submit failed: {e:?}"),
            }
        }
        let overflow = pool.try_submit(Box::new(|| {}));
        assert_eq!(overflow, Err(SubmitError::Busy));
        gate.wait();
        pool.shutdown();
    }

    #[test]
    fn worker_pool_clamps_sizes() {
        let pool = WorkerPool::new(0, 0);
        assert_eq!(pool.threads(), 1);
        pool.try_submit(Box::new(|| {})).unwrap();
    }

    #[test]
    fn run_jobs_in_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| Box::new(move || i * 3) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = Exec::new(4).run_jobs(jobs);
        assert_eq!(got, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }
}
