//! Machine configurations for the paper's Table II processors.

use repf_cache::{CacheConfig, DramConfig, HierarchyConfig};
use repf_core::AnalysisConfig;
use repf_hwpf::{amd_phenom_ii_prefetcher, intel_sandybridge_prefetcher, HwPrefetcher};

/// Which hardware-prefetcher preset a machine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HwPfKind {
    /// Stride + streamer (no adjacent-line), AMD Family 10h style.
    Amd,
    /// Stride + streamer + adjacent-line, Sandy Bridge style.
    Intel,
}

/// A modelled machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Display name (matches the paper's Table II).
    pub name: &'static str,
    /// Core frequency in GHz (converts cycles to seconds / GB/s).
    pub freq_ghz: f64,
    /// Cache hierarchy and DRAM channel.
    pub hierarchy: HierarchyConfig,
    /// Hardware prefetcher flavour.
    pub hw: HwPfKind,
    /// Cycles one executed software prefetch instruction costs (α).
    pub sw_prefetch_cost: f64,
    /// Sampling period for the profiling pass. The paper samples
    /// 1 in 100 000 of ~10¹¹-reference SPEC runs; our nominal runs are
    /// ~2×10⁶ references, so the scaled-down analog keeps the *number of
    /// samples* (a few thousand) comparable rather than the ratio.
    pub profile_period: u64,
}

/// AMD Phenom II X4 (Table II): 64 kB L1, 512 kB L2, 6 MB shared LLC,
/// 2.8 GHz. Peak DRAM bandwidth ≈ 10 GB/s.
pub fn amd_phenom_ii() -> MachineConfig {
    MachineConfig {
        name: "AMD Phenom II",
        freq_ghz: 2.8,
        hierarchy: HierarchyConfig {
            l1: CacheConfig::new(64 * 1024, 2, 64),
            l2: CacheConfig::new(512 * 1024, 16, 64),
            llc: CacheConfig::new(6 * 1024 * 1024, 48, 64),
            lat_l2: 5,
            lat_llc: 16,
            dram: DramConfig {
                latency_cycles: 26,
                service_cycles: 22,
                line_bytes: 64,
            },
        },
        hw: HwPfKind::Amd,
        sw_prefetch_cost: 1.0,
        profile_period: 1009,
    }
}

/// Intel Core i7-2600K (Table II): 32 kB L1, 256 kB L2, 8 MB shared LLC,
/// 3.4 GHz. Peak DRAM bandwidth ≈ 15.6 GB/s (the paper's streams
/// measurement).
pub fn intel_i7_2600k() -> MachineConfig {
    MachineConfig {
        name: "Intel i7-2600K",
        freq_ghz: 3.4,
        hierarchy: HierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 8, 64),
            l2: CacheConfig::new(256 * 1024, 8, 64),
            llc: CacheConfig::new(8 * 1024 * 1024, 16, 64),
            lat_l2: 4,
            lat_llc: 12,
            dram: DramConfig {
                latency_cycles: 22,
                service_cycles: 15,
                line_bytes: 64,
            },
        },
        hw: HwPfKind::Intel,
        sw_prefetch_cost: 1.0,
        profile_period: 1009,
    }
}

impl MachineConfig {
    /// Instantiate this machine's hardware prefetcher (one per core).
    pub fn make_hw_prefetcher(&self) -> Box<dyn HwPrefetcher> {
        let lb = self.hierarchy.l1.line_bytes;
        match self.hw {
            HwPfKind::Amd => amd_phenom_ii_prefetcher(lb),
            HwPfKind::Intel => intel_sandybridge_prefetcher(lb),
        }
    }

    /// Analysis configuration for this machine, given the measured average
    /// cycles per memory operation (Δ) of the profiled benchmark.
    pub fn analysis_config(&self, delta: f64) -> AnalysisConfig {
        let h = &self.hierarchy;
        AnalysisConfig {
            l1_bytes: h.l1.size_bytes,
            l2_bytes: h.l2.size_bytes,
            llc_bytes: h.llc.size_bytes,
            line_bytes: h.l1.line_bytes,
            lat_l2: h.lat_l2 as f64,
            lat_llc: h.lat_llc as f64,
            lat_dram: (h.dram.latency_cycles + h.dram.service_cycles) as f64,
            alpha: self.sw_prefetch_cost,
            delta,
            ..AnalysisConfig::default()
        }
    }

    /// Convert a cycle count to seconds.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Average off-chip bandwidth in GB/s for `bytes` moved over `cycles`.
    pub fn gb_per_s(&self, bytes: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        bytes as f64 / self.seconds(cycles) / 1e9
    }

    /// Peak DRAM bandwidth in GB/s (sanity checks, Figure 8/12 captions).
    pub fn peak_gb_per_s(&self) -> f64 {
        self.hierarchy.dram.peak_bytes_per_cycle() * self.freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometries() {
        let amd = amd_phenom_ii();
        assert_eq!(amd.hierarchy.l1.size_bytes, 64 * 1024);
        assert_eq!(amd.hierarchy.llc.size_bytes, 6 << 20);
        let intel = intel_i7_2600k();
        assert_eq!(intel.hierarchy.l1.size_bytes, 32 * 1024);
        assert_eq!(intel.hierarchy.llc.size_bytes, 8 << 20);
        assert!(intel.freq_ghz > amd.freq_ghz);
    }

    #[test]
    fn peak_bandwidths_match_paper_scale() {
        // The paper's Intel machine measured 15.6 GB/s with streams but
        // achieved at most 13.6 GB/s under real mixes (Fig 8); the
        // channel is calibrated between those. AMD's DDR2/3 platform
        // lands near 8 GB/s.
        let i = intel_i7_2600k().peak_gb_per_s();
        assert!((13.0..16.0).contains(&i), "intel peak {i}");
        let a = amd_phenom_ii().peak_gb_per_s();
        assert!((7.0..10.0).contains(&a), "amd peak {a}");
    }

    #[test]
    fn analysis_config_reflects_machine() {
        let m = intel_i7_2600k();
        let c = m.analysis_config(2.5);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.delta, 2.5);
        assert!(c.lat_dram > c.lat_llc);
        c.validate();
    }

    #[test]
    fn unit_conversions() {
        let m = amd_phenom_ii();
        assert!((m.seconds(2_800_000_000) - 1.0).abs() < 1e-9);
        // 64 B per 18 cycles at 2.8 GHz ≈ 9.95 GB/s.
        let g = m.gb_per_s(64, 18);
        assert!((g - 9.95).abs() < 0.1, "{g}");
    }

    #[test]
    fn prefetchers_instantiate() {
        assert!(amd_phenom_ii().make_hw_prefetcher().name().contains("amd"));
        assert!(intel_i7_2600k()
            .make_hw_prefetcher()
            .name()
            .contains("intel"));
    }
}
