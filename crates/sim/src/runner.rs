//! The core timing loop: in-order cores over the shared memory system.
//!
//! Each simulated core repeatedly: fetches the next memory reference from
//! its trace, performs the demand access (paying `base_cpr` plus any
//! demand-visible stall), then issues the software prefetch attached to
//! that PC (α cycles each) and/or feeds the hardware prefetcher. Cores
//! advance in global-time order, so DRAM-channel contention between cores
//! is causally consistent.

use repf_cache::{MemorySystem, PrefetchTarget};
use repf_core::PrefetchPlan;
use repf_hwpf::{HwPrefetcher, PrefetchRequest};
use repf_trace::{AccessKind, TraceSource};

use crate::machine::MachineConfig;

/// Everything one core needs for a run.
pub struct CoreSetup {
    /// The reference stream (cycled by the caller if it must outlive its
    /// nominal length).
    pub source: Box<dyn TraceSource>,
    /// Base (compute) cycles per reference.
    pub base_cpr: f64,
    /// Software prefetch plan, if the policy uses one.
    pub plan: Option<PrefetchPlan>,
    /// Hardware prefetcher, if the policy uses one.
    pub hw: Option<Box<dyn HwPrefetcher>>,
    /// References this core must complete.
    pub target_refs: u64,
}

/// Result of a finished single-core run.
#[derive(Clone, Debug)]
pub struct SoloOutcome {
    /// Cycles to complete the run.
    pub cycles: u64,
    /// References executed.
    pub refs: u64,
    /// Memory-system counters at completion.
    pub stats: repf_cache::CoreStats,
    /// Software prefetch instructions executed.
    pub sw_prefetches: u64,
    /// Total demand-visible memory stall cycles (cycles − stalls = the
    /// compute floor, used to estimate the post-prefetch iteration time Δ
    /// for the distance analysis).
    pub stall_cycles: u64,
}

struct CoreState {
    setup: CoreSetup,
    cycles: f64,
    refs_done: u64,
    finish: Option<Finish>,
    sw_prefetches: u64,
    stall_cycles: u64,
}

/// Snapshot taken the moment a core completes its target references.
#[derive(Clone, Debug)]
struct Finish {
    cycles: u64,
    stats: repf_cache::CoreStats,
    sw_prefetches: u64,
    stall_cycles: u64,
}

/// A multi-core simulation instance.
pub struct Sim {
    mem: MemorySystem,
    cores: Vec<CoreState>,
    req_buf: Vec<PrefetchRequest>,
}

impl Sim {
    /// Build a simulation of `setups.len()` cores on `machine`.
    pub fn new(machine: &MachineConfig, setups: Vec<CoreSetup>) -> Self {
        assert!(!setups.is_empty());
        let mem = MemorySystem::new(setups.len(), machine.hierarchy);
        Sim {
            mem,
            cores: setups
                .into_iter()
                .map(|setup| CoreState {
                    setup,
                    cycles: 0.0,
                    refs_done: 0,
                    finish: None,
                    sw_prefetches: 0,
                    stall_cycles: 0,
                })
                .collect(),
            req_buf: Vec::with_capacity(16),
        }
    }

    /// Advance core `ix` by one reference. Returns `false` when its
    /// source is exhausted.
    #[inline]
    fn step(&mut self, ix: usize, sw_cost: f64) -> bool {
        let core = &mut self.cores[ix];
        let Some(r) = core.setup.source.next_ref() else {
            return false;
        };
        let now = core.cycles as u64;
        let res = self.mem.demand_access(ix, r, now);
        core.cycles += core.setup.base_cpr + res.latency as f64;
        core.stall_cycles += res.latency;

        // Software prefetch attached to this load (§VI-C: inserted right
        // after the load, base register + computed distance).
        if r.kind == AccessKind::Load {
            if let Some(plan) = &core.setup.plan {
                if let Some(d) = plan.get(r.pc) {
                    core.cycles += sw_cost;
                    core.sw_prefetches += 1;
                    let target = if d.nta {
                        PrefetchTarget::Nta
                    } else {
                        PrefetchTarget::L1
                    };
                    let addr = r.addr.wrapping_add_signed(d.distance_bytes);
                    self.mem.prefetch(ix, addr, target, now);
                }
            }
        }

        // Hardware prefetcher training + issue.
        if let Some(hw) = &mut core.setup.hw {
            hw.set_pressure(self.mem.dram_pressure(now));
            self.req_buf.clear();
            hw.observe(r.pc, r.addr, res.level, &mut self.req_buf);
            for req in self.req_buf.drain(..) {
                self.mem.prefetch(ix, req.addr, req.target, now);
            }
        }

        core.refs_done += 1;
        if core.refs_done == core.setup.target_refs && core.finish.is_none() {
            core.finish = Some(Finish {
                cycles: core.cycles as u64,
                stats: *self.mem.core_stats(ix),
                sw_prefetches: core.sw_prefetches,
                stall_cycles: core.stall_cycles,
            });
        }
        true
    }

    /// Run a single-core simulation to completion of its target.
    pub fn run_solo(machine: &MachineConfig, setup: CoreSetup) -> SoloOutcome {
        let sw_cost = machine.sw_prefetch_cost;
        let mut sim = Sim::new(machine, vec![setup]);
        while sim.cores[0].finish.is_none() {
            if !sim.step(0, sw_cost) {
                // Source ended before the target: snapshot what we have.
                let c = &mut sim.cores[0];
                c.finish = Some(Finish {
                    cycles: c.cycles as u64,
                    stats: *sim.mem.core_stats(0),
                    sw_prefetches: c.sw_prefetches,
                    stall_cycles: c.stall_cycles,
                });
            }
        }
        let c = &sim.cores[0];
        let f = c.finish.clone().unwrap();
        SoloOutcome {
            cycles: f.cycles,
            refs: c.refs_done,
            stats: f.stats,
            sw_prefetches: f.sw_prefetches,
            stall_cycles: f.stall_cycles,
        }
    }

    /// Run all cores until each has completed its target. Cores that
    /// finish early keep running (their sources should be cycled) so the
    /// slowest co-runners feel realistic contention throughout — the
    /// paper's note 5 on long-running benchmarks.
    ///
    /// Returns one [`SoloOutcome`] per core, with counters snapshotted at
    /// each core's own completion point.
    pub fn run_mix(machine: &MachineConfig, setups: Vec<CoreSetup>) -> Vec<SoloOutcome> {
        let sw_cost = machine.sw_prefetch_cost;
        let n = setups.len();
        let mut sim = Sim::new(machine, setups);
        let mut unfinished = n;
        while unfinished > 0 {
            // Advance the globally-earliest core one reference.
            let ix = (0..n)
                .min_by(|&a, &b| {
                    sim.cores[a]
                        .cycles
                        .partial_cmp(&sim.cores[b].cycles)
                        .unwrap()
                })
                .unwrap();
            let had_finish = sim.cores[ix].finish.is_some();
            if !sim.step(ix, sw_cost) {
                // A non-cycled source ran dry: freeze this core by
                // recording its finish and pushing its clock to infinity.
                let c = &mut sim.cores[ix];
                if c.finish.is_none() {
                    c.finish = Some(Finish {
                        cycles: c.cycles as u64,
                        stats: *sim.mem.core_stats(ix),
                        sw_prefetches: c.sw_prefetches,
                        stall_cycles: c.stall_cycles,
                    });
                }
                c.cycles = f64::INFINITY;
            }
            if !had_finish && sim.cores[ix].finish.is_some() {
                unfinished -= 1;
            }
        }
        sim.cores
            .iter()
            .map(|c| {
                let f = c.finish.clone().unwrap();
                SoloOutcome {
                    cycles: f.cycles,
                    refs: c.setup.target_refs.min(c.refs_done),
                    stats: f.stats,
                    sw_prefetches: f.sw_prefetches,
                    stall_cycles: f.stall_cycles,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::amd_phenom_ii;
    use repf_core::PrefetchDirective;
    use repf_trace::patterns::{StridedStream, StridedStreamCfg};
    use repf_trace::{Pc, TraceSourceExt};

    fn stream_setup(refs: u64, plan: Option<PrefetchPlan>) -> CoreSetup {
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 30, 64, 1))
            .take_refs(refs)
            .cycle();
        CoreSetup {
            source: Box::new(src),
            base_cpr: 2.0,
            plan,
            hw: None,
            target_refs: refs,
        }
    }

    #[test]
    fn baseline_stream_pays_miss_latency() {
        let m = amd_phenom_ii();
        let out = Sim::run_solo(&m, stream_setup(10_000, None));
        assert_eq!(out.refs, 10_000);
        // Every access is a cold miss: ~2 + 26 + 22 cycles each.
        let cpr = out.cycles as f64 / out.refs as f64;
        assert!(cpr > 45.0 && cpr < 60.0, "baseline cpr {cpr}");
        assert_eq!(out.stats.l1_misses, 10_000);
        assert_eq!(out.sw_prefetches, 0);
    }

    #[test]
    fn software_prefetch_accelerates_stream() {
        let m = amd_phenom_ii();
        let mut plan = PrefetchPlan::empty();
        plan.insert(
            Pc(0),
            PrefetchDirective {
                distance_bytes: 64 * 8,
                nta: false,
                stride: 64,
            },
        );
        let base = Sim::run_solo(&m, stream_setup(10_000, None));
        let pf = Sim::run_solo(&m, stream_setup(10_000, Some(plan)));
        assert_eq!(pf.sw_prefetches, 10_000, "one per executed load");
        assert!(
            pf.cycles * 2 < base.cycles,
            "prefetching at distance 8 lines hides most of the miss: {} vs {}",
            pf.cycles,
            base.cycles
        );
        assert!(pf.stats.prefetches_useful > 9000);
    }

    #[test]
    fn hardware_prefetch_accelerates_stream() {
        let m = amd_phenom_ii();
        let mut setup = stream_setup(10_000, None);
        setup.hw = Some(m.make_hw_prefetcher());
        let base = Sim::run_solo(&m, stream_setup(10_000, None));
        let hw = Sim::run_solo(&m, setup);
        assert!(
            hw.cycles * 2 < base.cycles,
            "streamer chases the stream: {} vs {}",
            hw.cycles,
            base.cycles
        );
        assert!(hw.stats.prefetches_issued > 1000);
    }

    #[test]
    fn mix_contention_slows_everyone() {
        // Prefetch-accelerated streams demand far more bandwidth than one
        // channel provides: in a 4-way mix each core must run slower than
        // it does alone. (Four *baseline* streams sit just below
        // saturation and barely interact — which is exactly the paper's
        // point about prefetching stressing shared resources.)
        let m = amd_phenom_ii();
        let plan = || {
            let mut p = PrefetchPlan::empty();
            p.insert(
                Pc(0),
                PrefetchDirective {
                    distance_bytes: 64 * 16,
                    nta: false,
                    stride: 64,
                },
            );
            p
        };
        let solo = Sim::run_solo(&m, stream_setup(20_000, Some(plan())));
        let outs = Sim::run_mix(
            &m,
            (0..4)
                .map(|i| {
                    let src = StridedStream::new(StridedStreamCfg::loads(
                        Pc(0),
                        (i as u64) << 40,
                        1 << 30,
                        64,
                        1,
                    ))
                    .take_refs(20_000)
                    .cycle();
                    CoreSetup {
                        source: Box::new(src),
                        base_cpr: 2.0,
                        plan: Some(plan()),
                        hw: None,
                        target_refs: 20_000,
                    }
                })
                .collect(),
        );
        assert_eq!(outs.len(), 4);
        for o in &outs {
            assert!(
                o.cycles > solo.cycles * 3 / 2,
                "four accelerated streams saturate one channel: {} vs solo {}",
                o.cycles,
                solo.cycles
            );
        }
    }

    #[test]
    fn mix_snapshots_are_per_core() {
        let m = amd_phenom_ii();
        // One fast hot-loop core, one slow streaming core.
        let hot = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 4096, 64, 1 << 20))
            .take_refs(5_000)
            .cycle();
        let cold = StridedStream::new(StridedStreamCfg::loads(Pc(0), 1 << 40, 1 << 30, 64, 1))
            .take_refs(5_000)
            .cycle();
        let outs = Sim::run_mix(
            &m,
            vec![
                CoreSetup {
                    source: Box::new(hot),
                    base_cpr: 1.0,
                    plan: None,
                    hw: None,
                    target_refs: 5_000,
                },
                CoreSetup {
                    source: Box::new(cold),
                    base_cpr: 1.0,
                    plan: None,
                    hw: None,
                    target_refs: 5_000,
                },
            ],
        );
        assert!(outs[0].cycles < outs[1].cycles);
        assert!(outs[0].stats.dram_read_bytes < outs[1].stats.dram_read_bytes);
        assert_eq!(outs[0].refs, 5_000);
        assert_eq!(outs[1].refs, 5_000);
    }

    #[test]
    fn deterministic_runs() {
        let m = amd_phenom_ii();
        let a = Sim::run_solo(&m, stream_setup(5_000, None));
        let b = Sim::run_solo(&m, stream_setup(5_000, None));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
    }
}
