//! Cross-crate property tests (proptest): the invariants that hold for
//! *any* workload and configuration, not just the calibrated analogs.

use proptest::prelude::*;
use repf::cache::{CacheConfig, FunctionalCacheSim};
use repf::core::distance::{prefetch_distance, DistanceInputs};
use repf::sampling::{Sampler, SamplerConfig};
use repf::statstack::StatStackModel;
use repf::trace::patterns::{PointerChase, PointerChaseCfg, StridedStream, StridedStreamCfg};
use repf::trace::{MemRef, Pc, TraceSourceExt};

/// An arbitrary small synthetic trace: a few strided streams plus a chase.
fn arb_trace() -> impl Strategy<Value = Vec<MemRef>> {
    (
        2u64..6,       // streams
        1u64..5,       // stride in units of 16 bytes
        64u32..512,    // chase nodes
        0u64..u64::MAX, // seed
    )
        .prop_map(|(streams, stride16, nodes, seed)| {
            let mut refs = Vec::new();
            for s in 0..streams {
                let mut st = StridedStream::new(StridedStreamCfg::loads(
                    Pc(s as u32),
                    s << 30,
                    1 << 16,
                    (stride16 * 16) as i64,
                    2,
                ));
                refs.extend(st.collect_refs(2000));
            }
            let mut ch = PointerChase::new(PointerChaseCfg {
                chase_pc: Pc(100),
                payload_pcs: vec![],
                base: 1 << 40,
                node_bytes: 64,
                nodes,
                steps_per_pass: nodes as u64,
                passes: 3,
                seed,
                run_len: 1,
            });
            refs.extend(ch.collect_refs(5000));
            refs
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LRU inclusion property: a bigger cache of the same geometry never
    /// misses more, for any trace.
    #[test]
    fn bigger_caches_never_miss_more(refs in arb_trace()) {
        let mut misses = Vec::new();
        for size_kb in [16u64, 64, 256] {
            let mut sim = FunctionalCacheSim::new(CacheConfig::new(size_kb << 10, 8, 64));
            for &r in &refs {
                sim.step(r);
            }
            misses.push(sim.totals().misses);
        }
        prop_assert!(misses[0] >= misses[1] && misses[1] >= misses[2],
            "miss counts {misses:?} must be non-increasing in size");
    }

    /// StatStack's stack-distance estimate is monotone in the reuse
    /// distance and never exceeds it, for any sampled trace.
    #[test]
    fn statstack_stack_distance_bounds(refs in arb_trace(), period in 1u64..64) {
        let mut src = repf::trace::source::Recorded::new(refs);
        let profile = Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 5,
        }).profile(&mut src);
        let model = StatStackModel::from_profile(&profile);
        let mut prev = 0.0f64;
        for d in [0u64, 1, 3, 9, 81, 729, 6561] {
            let s = model.stack_distance(d);
            prop_assert!(s + 1e-9 >= prev, "monotone in d");
            prop_assert!(s <= d as f64 + 1e-9, "S(d) ≤ d");
            prev = s;
        }
    }

    /// StatStack miss-ratio curves are non-increasing in cache size.
    #[test]
    fn statstack_mrc_monotone(refs in arb_trace(), period in 1u64..64) {
        let mut src = repf::trace::source::Recorded::new(refs);
        let profile = Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 11,
        }).profile(&mut src);
        let model = StatStackModel::from_profile(&profile);
        let mut prev = f64::INFINITY;
        for lines in [1u64, 16, 256, 4096, 65536] {
            let mr = model.miss_ratio(lines);
            prop_assert!((0.0..=1.0).contains(&mr));
            prop_assert!(mr <= prev + 1e-9);
            prev = mr;
        }
    }

    /// Sampling is lossless bookkeeping: every sample's indices are
    /// consistent with the trace length, and distances fit the window.
    #[test]
    fn sampler_accounting(refs in arb_trace(), period in 1u64..128) {
        let n = refs.len() as u64;
        let mut src = repf::trace::source::Recorded::new(refs);
        let profile = Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 3,
        }).profile(&mut src);
        prop_assert_eq!(profile.total_refs, n);
        for r in &profile.reuse {
            prop_assert!(r.start_index < n);
            prop_assert!(r.start_index + r.distance + 1 < n,
                "reuse fits inside the trace");
        }
        for s in &profile.strides {
            prop_assert!(s.recurrence < n);
        }
    }

    /// The prefetch-distance formula respects its contract: direction
    /// follows the stride sign, magnitude at least one stride/line and
    /// bounded by the trip-count cap.
    #[test]
    fn distance_contract(
        stride in prop::sample::select(vec![-512i64, -64, -16, 8, 16, 64, 192, 1024]),
        recurrence in 0u64..200,
        latency in 1.0f64..500.0,
        execs in 4u64..1_000_000,
    ) {
        let inp = DistanceInputs {
            stride,
            recurrence,
            delta: 2.0,
            latency,
            line_bytes: 64,
            est_execs: execs,
        };
        if let Some(d) = prefetch_distance(&inp) {
            prop_assert_eq!(d.signum(), stride.signum());
            prop_assert!(d.unsigned_abs() >= stride.unsigned_abs().min(64));
            prop_assert!(d.unsigned_abs() <= (execs / 2) * stride.unsigned_abs());
        }
    }

    /// The timing simulator conserves work: cycles strictly increase with
    /// reference count, and stats add up.
    #[test]
    fn sim_work_conservation(extra in 1u64..5000) {
        use repf::sim::{amd_phenom_ii, CoreSetup, Sim};
        let m = amd_phenom_ii();
        let run = |n: u64| {
            let src = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 26, 64, 1))
                .take_refs(n)
                .cycle();
            Sim::run_solo(&m, CoreSetup {
                source: Box::new(src),
                base_cpr: 2.0,
                plan: None,
                hw: None,
                target_refs: n,
            })
        };
        let a = run(1000);
        let b = run(1000 + extra);
        prop_assert!(b.cycles > a.cycles);
        prop_assert_eq!(a.stats.demand_accesses, 1000);
        prop_assert_eq!(b.stats.demand_accesses, 1000 + extra);
        prop_assert!(a.stats.l1_misses <= a.stats.demand_accesses);
    }
}
