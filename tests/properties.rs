//! Cross-crate property tests: the invariants that hold for *any*
//! workload and configuration, not just the calibrated analogs. Cases are
//! drawn from seeded xorshift streams so the suite is deterministic.

use repf::cache::{CacheConfig, FunctionalCacheSim};
use repf::core::distance::{prefetch_distance, DistanceInputs};
use repf::sampling::{Sampler, SamplerConfig};
use repf::statstack::StatStackModel;
use repf::trace::patterns::{PointerChase, PointerChaseCfg, StridedStream, StridedStreamCfg};
use repf::trace::rng::XorShift64Star;
use repf::trace::{MemRef, Pc, TraceSourceExt};

/// An arbitrary small synthetic trace: a few strided streams plus a chase.
fn arb_trace(case: u64) -> Vec<MemRef> {
    let mut rng = XorShift64Star::new(0x7ACE ^ case << 8);
    let streams = 2 + rng.below(4);
    let stride16 = 1 + rng.below(4);
    let nodes = 64 + rng.below(448) as u32;
    let seed = rng.next_u64();
    let mut refs = Vec::new();
    for s in 0..streams {
        let mut st = StridedStream::new(StridedStreamCfg::loads(
            Pc(s as u32),
            s << 30,
            1 << 16,
            (stride16 * 16) as i64,
            2,
        ));
        refs.extend(st.collect_refs(2000));
    }
    let mut ch = PointerChase::new(PointerChaseCfg {
        chase_pc: Pc(100),
        payload_pcs: vec![],
        base: 1 << 40,
        node_bytes: 64,
        nodes,
        steps_per_pass: nodes as u64,
        passes: 3,
        seed,
        run_len: 1,
    });
    refs.extend(ch.collect_refs(5000));
    refs
}

const CASES: u64 = 24;

#[test]
fn bigger_caches_never_miss_more() {
    // LRU inclusion property: a bigger cache of the same geometry never
    // misses more, for any trace.
    for case in 0..CASES {
        let refs = arb_trace(case);
        let mut misses = Vec::new();
        for size_kb in [16u64, 64, 256] {
            let mut sim = FunctionalCacheSim::new(CacheConfig::new(size_kb << 10, 8, 64));
            for &r in &refs {
                sim.step(r);
            }
            misses.push(sim.totals().misses);
        }
        assert!(
            misses[0] >= misses[1] && misses[1] >= misses[2],
            "case {case}: miss counts {misses:?} must be non-increasing in size"
        );
    }
}

#[test]
fn statstack_stack_distance_bounds() {
    // StatStack's stack-distance estimate is monotone in the reuse
    // distance and never exceeds it, for any sampled trace.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x5D15 ^ case << 8);
        let period = 1 + rng.below(63);
        let mut src = repf::trace::source::Recorded::new(arb_trace(case));
        let profile = Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 5,
        })
        .profile(&mut src);
        let model = StatStackModel::from_profile(&profile);
        let mut prev = 0.0f64;
        for d in [0u64, 1, 3, 9, 81, 729, 6561] {
            let s = model.stack_distance(d);
            assert!(s + 1e-9 >= prev, "case {case}: monotone in d");
            assert!(s <= d as f64 + 1e-9, "case {case}: S(d) ≤ d");
            prev = s;
        }
    }
}

#[test]
fn statstack_mrc_monotone() {
    // StatStack miss-ratio curves are non-increasing in cache size.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x3C0 ^ case << 8);
        let period = 1 + rng.below(63);
        let mut src = repf::trace::source::Recorded::new(arb_trace(case));
        let profile = Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 11,
        })
        .profile(&mut src);
        let model = StatStackModel::from_profile(&profile);
        let mut prev = f64::INFINITY;
        for lines in [1u64, 16, 256, 4096, 65536] {
            let mr = model.miss_ratio(lines);
            assert!((0.0..=1.0).contains(&mr), "case {case}");
            assert!(mr <= prev + 1e-9, "case {case}");
            prev = mr;
        }
    }
}

#[test]
fn sampler_accounting() {
    // Sampling is lossless bookkeeping: every sample's indices are
    // consistent with the trace length, and distances fit the window.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0xACC7 ^ case << 8);
        let period = 1 + rng.below(127);
        let refs = arb_trace(case);
        let n = refs.len() as u64;
        let mut src = repf::trace::source::Recorded::new(refs);
        let profile = Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 3,
        })
        .profile(&mut src);
        assert_eq!(profile.total_refs, n);
        for r in &profile.reuse {
            assert!(r.start_index < n);
            assert!(
                r.start_index + r.distance + 1 < n,
                "case {case}: reuse fits inside the trace"
            );
        }
        for s in &profile.strides {
            assert!(s.recurrence < n, "case {case}");
        }
    }
}

#[test]
fn distance_contract() {
    // The prefetch-distance formula respects its contract: direction
    // follows the stride sign, magnitude at least one stride/line and
    // bounded by the trip-count cap.
    for case in 0..1000u64 {
        let mut rng = XorShift64Star::new(0xD157A ^ case << 8);
        let stride = [-512i64, -64, -16, 8, 16, 64, 192, 1024][rng.below(8) as usize];
        let recurrence = rng.below(200);
        let latency = 1.0 + rng.unit_f64() * 499.0;
        let execs = 4 + rng.below(1_000_000 - 4);
        let inp = DistanceInputs {
            stride,
            recurrence,
            delta: 2.0,
            latency,
            line_bytes: 64,
            est_execs: execs,
        };
        if let Some(d) = prefetch_distance(&inp) {
            assert_eq!(d.signum(), stride.signum(), "case {case}");
            assert!(d.unsigned_abs() >= stride.unsigned_abs().min(64), "case {case}");
            assert!(
                d.unsigned_abs() <= (execs / 2) * stride.unsigned_abs(),
                "case {case}"
            );
        }
    }
}

#[test]
fn sim_work_conservation() {
    // The timing simulator conserves work: cycles strictly increase with
    // reference count, and stats add up.
    use repf::sim::{amd_phenom_ii, CoreSetup, Sim};
    let m = amd_phenom_ii();
    let run = |n: u64| {
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 26, 64, 1))
            .take_refs(n)
            .cycle();
        Sim::run_solo(
            &m,
            CoreSetup {
                source: Box::new(src),
                base_cpr: 2.0,
                plan: None,
                hw: None,
                target_refs: n,
            },
        )
    };
    let a = run(1000);
    for case in 0..8u64 {
        let mut rng = XorShift64Star::new(0xC035 ^ case << 8);
        let extra = 1 + rng.below(4999);
        let b = run(1000 + extra);
        assert!(b.cycles > a.cycles, "case {case}");
        assert_eq!(a.stats.demand_accesses, 1000);
        assert_eq!(b.stats.demand_accesses, 1000 + extra);
        assert!(a.stats.l1_misses <= a.stats.demand_accesses);
    }
}
