//! Cheap versions of each figure that assert the paper's *qualitative*
//! claims — the regression net for the reproduction.

use repf::sim::{amd_phenom_ii, intel_i7_2600k, prepare, run_policy, Policy};
use repf::workloads::{BenchmarkId, BuildOptions};

fn opts() -> BuildOptions {
    BuildOptions {
        refs_scale: 0.5,
        ..Default::default()
    }
}

fn speedup(
    id: BenchmarkId,
    machine: &repf::sim::MachineConfig,
    plans: &repf::sim::BenchPlans,
    policy: Policy,
) -> f64 {
    let out = run_policy(id, machine, plans, policy, &opts());
    plans.baseline.cycles as f64 / out.cycles as f64
}

#[test]
fn fig4_libquantum_gains_big_from_software_prefetching() {
    let m = amd_phenom_ii();
    let plans = prepare(BenchmarkId::Libquantum, &m, &opts());
    let s = speedup(BenchmarkId::Libquantum, &m, &plans, Policy::SoftwareNt);
    assert!(s > 1.3, "libquantum SW+NT speedup {s:.2} (paper: up to +62%)");
}

#[test]
fn fig4_cigar_slows_under_amd_hardware_prefetch_but_gains_from_software() {
    let m = amd_phenom_ii();
    let plans = prepare(BenchmarkId::Cigar, &m, &opts());
    let hw = speedup(BenchmarkId::Cigar, &m, &plans, Policy::Hardware);
    let sw = speedup(BenchmarkId::Cigar, &m, &plans, Policy::SoftwareNt);
    assert!(
        hw < 1.02,
        "cigar must not gain from AMD-style hardware prefetch ({hw:.3}; paper: -11%)"
    );
    assert!(sw > 1.05, "cigar gains from software prefetch ({sw:.3}; paper: +13%)");
    assert!(sw > hw, "the paper's headline cigar contrast");
}

#[test]
fn fig4_cigar_behaves_differently_on_intel() {
    // Intel's adjacent-line prefetcher helps cigar (§VII-A).
    let m = intel_i7_2600k();
    let plans = prepare(BenchmarkId::Cigar, &m, &opts());
    let hw = speedup(BenchmarkId::Cigar, &m, &plans, Policy::Hardware);
    assert!(hw > 1.02, "Intel hardware prefetch benefits cigar ({hw:.3})");
}

#[test]
fn fig4_pointer_chasers_gain_little() {
    let m = amd_phenom_ii();
    for id in [BenchmarkId::Omnetpp, BenchmarkId::Xalan] {
        let plans = prepare(id, &m, &opts());
        let sw = speedup(id, &m, &plans, Policy::SoftwareNt);
        assert!(
            sw < 1.30,
            "{id}: almost nothing to stride-prefetch ({sw:.3})"
        );
    }
}

#[test]
fn fig4_stride_centric_is_never_materially_better_than_mddli() {
    let m = amd_phenom_ii();
    for id in [
        BenchmarkId::Libquantum,
        BenchmarkId::Milc,
        BenchmarkId::Gcc,
        BenchmarkId::Soplex,
    ] {
        let plans = prepare(id, &m, &opts());
        let sw = speedup(id, &m, &plans, Policy::Software);
        let sc = speedup(id, &m, &plans, Policy::StrideCentric);
        assert!(
            sc <= sw + 0.02,
            "{id}: stride-centric ({sc:.3}) must not beat the filtered plan ({sw:.3})"
        );
    }
}

#[test]
fn fig5_nt_cuts_traffic_on_intel_hardware_hotspots() {
    // mcf/omnetpp/xalan blow up Intel's HW traffic (adjacent-line junk on
    // pointer chases); SW+NT stays near baseline.
    let m = intel_i7_2600k();
    for id in [BenchmarkId::Mcf, BenchmarkId::Omnetpp, BenchmarkId::Xalan] {
        let plans = prepare(id, &m, &opts());
        let hw = run_policy(id, &m, &plans, Policy::Hardware, &opts());
        let sw = run_policy(id, &m, &plans, Policy::SoftwareNt, &opts());
        let base = plans.baseline.stats.dram_read_bytes.max(1);
        let hw_inc = hw.stats.dram_read_bytes as f64 / base as f64 - 1.0;
        let sw_inc = sw.stats.dram_read_bytes as f64 / base as f64 - 1.0;
        assert!(
            hw_inc > 0.3,
            "{id}: Intel HW prefetch wastes traffic ({hw_inc:+.2})"
        );
        assert!(
            sw_inc < 0.15,
            "{id}: SW+NT stays near baseline traffic ({sw_inc:+.2})"
        );
    }
}

#[test]
fn fig6_bandwidth_ordering_matches_prefetch_aggressiveness() {
    let m = intel_i7_2600k();
    let plans = prepare(BenchmarkId::Mcf, &m, &opts());
    let base_bw = plans.baseline.stats.dram_total_bytes() as f64 / plans.baseline.cycles as f64;
    let hw = run_policy(BenchmarkId::Mcf, &m, &plans, Policy::Hardware, &opts());
    let hw_bw = hw.stats.dram_total_bytes() as f64 / hw.cycles as f64;
    let sw = run_policy(BenchmarkId::Mcf, &m, &plans, Policy::SoftwareNt, &opts());
    let sw_bw = sw.stats.dram_total_bytes() as f64 / sw.cycles as f64;
    assert!(
        hw_bw > sw_bw && sw_bw > base_bw,
        "bandwidth ordering HW > SW+NT > baseline ({hw_bw:.3} / {sw_bw:.3} / {base_bw:.3})"
    );
}

#[test]
fn table1_milc_divergence_between_grouped_and_exact_stride_analysis() {
    // milc's alternating 64/80 stride is regular to the line-grouped
    // analysis but irregular to the exact-stride stride-centric baseline.
    let m = amd_phenom_ii();
    let plans = prepare(BenchmarkId::Milc, &m, &opts());
    let mddli_pcs = plans.plan_nt.pcs();
    let sc_pcs = plans.stride_centric.pcs();
    assert!(
        mddli_pcs.iter().any(|pc| !sc_pcs.contains(pc)),
        "MDDLI instruments the alternating-stride load that stride-centric misses \
         (mddli {mddli_pcs:?} vs sc {sc_pcs:?})"
    );
}
