//! CLI contract tests: help exits 0 with per-subcommand usage, bad flags
//! exit non-zero, and the serve/query pair works end to end as processes.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

fn repf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repf"))
}

#[test]
fn help_exits_zero_with_usage() {
    let out = repf().arg("--help").output().unwrap();
    assert!(out.status.success(), "--help must exit 0");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: repf <command>"));
    assert!(text.contains("serve"));
    assert!(text.contains("query"));
}

#[test]
fn per_subcommand_help_exits_zero() {
    for (cmd, marker) in [
        ("list", "usage: repf list"),
        ("profile", "--period"),
        ("analyze", "usage: repf analyze"),
        ("run", "baseline|hw|sw|swnt|sc|combined"),
        ("mix", "usage: repf mix"),
        ("serve", "--budget-mb"),
        ("serve", "--shards"),
        ("serve", "--no-model-cache"),
        ("serve", "--io-mode"),
        ("serve", "--max-conns"),
        ("query", "session:NAME"),
        ("record", "--sessions"),
        ("replay", "--no-check"),
        ("replay", "--io-mode"),
    ] {
        let out = repf().args([cmd, "--help"]).output().unwrap();
        assert!(out.status.success(), "{cmd} --help must exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(marker), "{cmd} help must mention {marker}: {text}");
    }
}

#[test]
fn bad_flags_exit_nonzero() {
    for args in [
        vec!["--bogus"],
        vec!["run", "--policy", "warp-speed"],
        vec!["run", "--machine", "marvin"],
        vec!["query", "mrc", "gcc"], // missing --addr
        vec!["serve", "--queue", "not-a-number"],
        vec!["serve", "--io-mode", "fibers"],
        vec!["serve", "--max-conns", "many"],
        vec!["record"],               // missing --out
        vec!["replay"],               // missing --trace
        vec![], // no command at all
    ] {
        let out = repf().args(&args).output().unwrap();
        assert!(
            !out.status.success(),
            "repf {args:?} must fail, got {:?}",
            out.status
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "stderr shows usage for {args:?}");
    }
}

#[test]
fn record_and_replay_roundtrip_as_processes() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("repf-cli-{}.trace", std::process::id()));
    let path_s = path.to_str().unwrap();

    let rec = repf()
        .args(["record", "--out", path_s, "--sessions", "2", "--rounds", "2", "--samples", "24"])
        .output()
        .unwrap();
    assert!(rec.status.success(), "{}", String::from_utf8_lossy(&rec.stderr));
    let text = String::from_utf8_lossy(&rec.stdout);
    assert!(text.contains("recorded"), "record reports its work: {text}");

    // Replaying the same trace twice must report the same digest and a
    // clean run — that output line is what the CI smoke step greps.
    let mut digests = Vec::new();
    for _ in 0..2 {
        let rep = repf()
            .args(["replay", "--trace", path_s, "--nodes", "2"])
            .output()
            .unwrap();
        assert!(rep.status.success(), "{}", String::from_utf8_lossy(&rep.stderr));
        let text = String::from_utf8_lossy(&rep.stdout);
        assert!(text.contains("divergences 0"), "clean replay: {text}");
        let digest = text
            .lines()
            .find(|l| l.contains("digest"))
            .and_then(|l| l.split("digest ").nth(1))
            .and_then(|s| s.split(',').next())
            .unwrap()
            .to_string();
        digests.push(digest);
    }
    assert_eq!(digests[0], digests[1], "replay digest is reproducible");
    std::fs::remove_file(&path).ok();

    let missing = repf()
        .args(["replay", "--trace", "/no/such/file.trace"])
        .output()
        .unwrap();
    assert!(!missing.status.success(), "missing trace file must fail");
    let err = String::from_utf8_lossy(&missing.stderr);
    assert!(err.contains("failed"), "load error reported: {err}");
}

/// A daemon that dies mid-conversation must surface as a clean
/// "connection closed" error, not an os-level read failure.
#[test]
fn query_against_vanishing_server_reports_connection_closed() {
    // A fake server: accept the connection, then drop it immediately.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let accepter = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
    });

    let out = repf().args(["query", "ping", "--addr", &addr]).output().unwrap();
    accepter.join().unwrap();
    assert!(!out.status.success(), "query against dead server must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("connection closed by server"),
        "clean disconnect report, got: {err}"
    );
}

#[test]
fn serve_and_query_roundtrip_as_processes() {
    // Ephemeral port; the daemon prints the bound address first.
    let mut server = repf()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2", "--shards", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner
        .strip_prefix("repf-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let ping = repf().args(["query", "ping", "--addr", &addr]).output().unwrap();
    assert!(ping.status.success(), "{}", String::from_utf8_lossy(&ping.stderr));
    assert_eq!(String::from_utf8_lossy(&ping.stdout).trim(), "pong");

    let stats = repf().args(["query", "stats", "--addr", &addr]).output().unwrap();
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("requests.ping = 1"), "stats reflect the ping: {text}");
    assert!(text.contains("sessions.shards = 4"), "per-shard stats exposed: {text}");

    // Shutdown control message drains the daemon; the process exits.
    let down = repf().args(["query", "shutdown", "--addr", &addr]).output().unwrap();
    assert!(down.status.success());
    let status = server.wait().unwrap();
    assert!(status.success(), "server exits cleanly after shutdown");
}
