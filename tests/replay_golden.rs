//! Golden-trace regression: a small recorded trace is committed under
//! `tests/data/`, and its replay digest is pinned here. Any change to
//! the wire encoding, the StatStack fit, the analyzer, or the session
//! store that alters a deterministic response byte shows up as a digest
//! mismatch — and any change to the trace format shows up as a load
//! failure.
//!
//! Regenerate after an *intentional* behavior change with:
//!
//! ```text
//! repf record --out tests/data/golden.trace --sessions 3 --rounds 2 \
//!             --samples 40 --seed 42
//! repf replay --trace tests/data/golden.trace   # prints the new digest
//! ```

use repf::serve::{replay_spawned, ReplayConfig, ServeConfig, Trace, TRACE_VERSION};
use std::time::Duration;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden.trace");

/// Pinned by `repf replay` against the committed trace (node count does
/// not matter — the digest is invariant under it).
const GOLDEN_DIGEST: u64 = 0x06715057c066e48f;
const GOLDEN_SEED: u64 = 42;
const GOLDEN_REQUESTS: u64 = 16;

#[test]
fn golden_trace_replays_to_the_pinned_digest() {
    let trace = Trace::load(GOLDEN_PATH).expect("committed trace loads under the current format");
    assert_eq!(trace.seed, GOLDEN_SEED, "trace header seed");
    assert_eq!(trace.len() as u64, GOLDEN_REQUESTS, "trace record count");
    let _ = TRACE_VERSION; // the load above enforces it

    let report = replay_spawned(
        1,
        &trace,
        &ServeConfig {
            threads: 2,
            idle_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
        &ReplayConfig::default(),
    )
    .expect("replay runs");

    assert!(
        report.is_clean(),
        "golden trace diverged from the oracle:\n{}",
        report
            .divergences
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.requests, GOLDEN_REQUESTS);
    assert_eq!(
        report.digest, GOLDEN_DIGEST,
        "deterministic response bytes changed; if intentional, regenerate \
         the golden trace and digest (see module docs)"
    );
}
