//! Cross-crate integration tests: the full Figure-1 pipeline (workload →
//! sampling → StatStack → MDDLI → plan → timed run) for every benchmark
//! analog, on both machines.

use repf::sim::{amd_phenom_ii, intel_i7_2600k, prepare, run_policy, Policy};
use repf::workloads::{BenchmarkId, BuildOptions};

fn opts() -> BuildOptions {
    BuildOptions {
        refs_scale: 0.25,
        ..Default::default()
    }
}

#[test]
fn every_benchmark_flows_through_the_pipeline_on_both_machines() {
    for machine in [amd_phenom_ii(), intel_i7_2600k()] {
        for id in BenchmarkId::all() {
            let plans = prepare(id, &machine, &opts());
            assert!(
                plans.profile.sample_count() > 50,
                "{id}: sampling produced data"
            );
            assert!(plans.delta >= 1.0, "{id}: Δ at least one cycle per op");
            // Every benchmark except the pure pointer-chasers gets at
            // least one prefetch directive.
            if !matches!(id, BenchmarkId::Omnetpp | BenchmarkId::Xalan) {
                assert!(
                    !plans.plan_nt.is_empty(),
                    "{id} on {}: plan must not be empty",
                    machine.name
                );
            }
            let out = run_policy(id, &machine, &plans, Policy::SoftwareNt, &opts());
            assert_eq!(out.refs, plans.baseline.refs, "{id}: same work");
        }
    }
}

#[test]
fn software_prefetching_never_collapses_throughput() {
    // The paper's method "never hurts performance" in mixes; solo, allow
    // a small margin for the α tax on hard-to-help benchmarks.
    let machine = amd_phenom_ii();
    for id in BenchmarkId::all() {
        let plans = prepare(id, &machine, &opts());
        let sw = run_policy(id, &machine, &plans, Policy::SoftwareNt, &opts());
        let speedup = plans.baseline.cycles as f64 / sw.cycles as f64;
        assert!(
            speedup > 0.97,
            "{id}: SW+NT must not slow the program down materially ({speedup:.3})"
        );
    }
}

#[test]
fn nt_traffic_never_exceeds_hardware_traffic() {
    // The Figure 5 invariant: the resource-efficient scheme is strictly
    // better than hardware prefetching on off-chip traffic.
    for machine in [amd_phenom_ii(), intel_i7_2600k()] {
        for id in BenchmarkId::all() {
            let plans = prepare(id, &machine, &opts());
            let hw = run_policy(id, &machine, &plans, Policy::Hardware, &opts());
            let sw = run_policy(id, &machine, &plans, Policy::SoftwareNt, &opts());
            assert!(
                sw.stats.dram_read_bytes <= hw.stats.dram_read_bytes * 21 / 20,
                "{id} on {}: SW+NT traffic ({}) must not exceed HW traffic ({}) by more than 5%",
                machine.name,
                sw.stats.dram_read_bytes,
                hw.stats.dram_read_bytes
            );
        }
    }
}

#[test]
fn plans_are_deterministic_across_preparations() {
    let machine = intel_i7_2600k();
    let a = prepare(BenchmarkId::Milc, &machine, &opts());
    let b = prepare(BenchmarkId::Milc, &machine, &opts());
    assert_eq!(a.plan_nt.pcs(), b.plan_nt.pcs());
    assert_eq!(a.baseline.cycles, b.baseline.cycles);
    for pc in a.plan_nt.pcs() {
        assert_eq!(a.plan_nt.get(pc), b.plan_nt.get(pc));
    }
}

#[test]
fn one_profile_serves_both_machines() {
    // §VII: "We optimized for both target architectures using a single
    // input profile." The profile is machine-independent; the analysis
    // step takes the machine geometry.
    use repf::core::analyze;
    use repf::sampling::{Sampler, SamplerConfig};
    use repf::workloads::build;

    let mut w = build(BenchmarkId::GemsFdtd, &BuildOptions {
        refs_scale: 1.0,
        ..Default::default()
    });
    let profile = Sampler::new(SamplerConfig {
        sample_period: 1009,
        line_bytes: 64,
        seed: 0xAB,
    })
    .profile(&mut w);
    let amd = analyze(&profile, &amd_phenom_ii().analysis_config(6.0));
    let intel = analyze(&profile, &intel_i7_2600k().analysis_config(6.0));
    assert!(!amd.plan.is_empty());
    assert!(!intel.plan.is_empty());
    // The streaming loads are delinquent on both targets.
    let amd_pcs = amd.plan.pcs();
    let intel_pcs = intel.plan.pcs();
    assert!(amd_pcs.iter().any(|pc| intel_pcs.contains(pc)));
}
