//! Integration tests for the multiprogrammed behaviour that the paper's
//! §VII-C results rest on: shared-LLC and shared-bandwidth contention,
//! and the benefit of resource conservation.

use repf::metrics::weighted_speedup;
use repf::sim::{amd_phenom_ii, generate_mixes, run_mix, MixSpec, PlanCache, Policy};
use repf::statstack::CoRunModel;
use repf::workloads::{BenchmarkId, BuildOptions, InputSet};

fn cache(machine: &repf::sim::MachineConfig) -> PlanCache {
    PlanCache::build(
        machine,
        &BuildOptions {
            refs_scale: 0.3,
            ..Default::default()
        },
    )
}

#[test]
fn mixes_are_deterministic_and_traffic_ordered() {
    let m = amd_phenom_ii();
    let cache = cache(&m);
    let spec = MixSpec {
        apps: [
            BenchmarkId::Libquantum,
            BenchmarkId::Lbm,
            BenchmarkId::Mcf,
            BenchmarkId::Cigar,
        ],
    };
    let scale = 0.3;
    let inputs = [InputSet::Ref; 4];
    let base = run_mix(&spec, &m, Policy::Baseline, &cache, inputs, scale);
    let base2 = run_mix(&spec, &m, Policy::Baseline, &cache, inputs, scale);
    for (a, b) in base.per_app.iter().zip(&base2.per_app) {
        assert_eq!(a.cycles, b.cycles, "mix runs are deterministic");
    }
    let hw = run_mix(&spec, &m, Policy::Hardware, &cache, inputs, scale);
    let sw = run_mix(&spec, &m, Policy::SoftwareNt, &cache, inputs, scale);
    assert!(
        sw.total_read_bytes() < hw.total_read_bytes(),
        "resource-efficient prefetching moves less data ({} vs {})",
        sw.total_read_bytes(),
        hw.total_read_bytes()
    );
}

#[test]
fn contention_makes_everyone_slower_than_solo() {
    let m = amd_phenom_ii();
    let cache = cache(&m);
    // Four copies of the most bandwidth-hungry benchmark.
    let spec = MixSpec {
        apps: [BenchmarkId::Lbm; 4],
    };
    let mix = run_mix(
        &spec,
        &m,
        Policy::Baseline,
        &cache,
        [InputSet::Ref; 4],
        0.3,
    );
    let solo = &cache.get(BenchmarkId::Lbm).baseline;
    // Solo baseline at 0.3 scale would take ~0.3/0.3 of solo cycles — the
    // cached baseline ran at 0.3 scale too, so compare directly.
    for app in &mix.per_app {
        assert!(
            app.cycles >= solo.cycles,
            "co-running with three copies of itself cannot be faster than solo"
        );
    }
}

#[test]
fn software_prefetching_holds_its_own_in_mixes() {
    // A 6-mix sample of the Figure 7 result. At full scale SW+NT wins the
    // majority of mixes (see the fig7 binary); this cheap version asserts
    // the weaker invariants that hold even at reduced run lengths: SW+NT
    // never tanks a mix, always improves throughput, and its *average*
    // stays within reach of hardware prefetching while moving less data.
    let m = amd_phenom_ii();
    let cache = cache(&m);
    let specs = generate_mixes(6, 99);
    let mut sum_sw = 0.0;
    let mut sum_hw = 0.0;
    for spec in &specs {
        let inputs = [InputSet::Ref; 4];
        let base = run_mix(spec, &m, Policy::Baseline, &cache, inputs, 0.3);
        let hw = run_mix(spec, &m, Policy::Hardware, &cache, inputs, 0.3);
        let sw = run_mix(spec, &m, Policy::SoftwareNt, &cache, inputs, 0.3);
        let ws_hw = weighted_speedup(&hw.speedups_vs(&base));
        let ws_sw = weighted_speedup(&sw.speedups_vs(&base));
        assert!(
            ws_sw > 1.0,
            "SW+NT improves every mix ({:?}: {ws_sw:.3})",
            spec.apps
        );
        assert!(
            sw.total_read_bytes() <= hw.total_read_bytes(),
            "SW+NT moves no more data than HW in any mix"
        );
        sum_sw += ws_sw;
        sum_hw += ws_hw;
    }
    assert!(
        sum_sw > sum_hw - 0.30,
        "SW+NT average throughput stays close to HW even at reduced scale          ({:.3} vs {:.3})",
        sum_sw / 6.0,
        sum_hw / 6.0
    );
}

#[test]
fn alternate_inputs_still_profit_from_reference_plans() {
    // §VII-D: plans from the reference input applied to different inputs
    // still speed things up.
    let m = amd_phenom_ii();
    let cache = cache(&m);
    let spec = MixSpec {
        apps: [
            BenchmarkId::Libquantum,
            BenchmarkId::Leslie3d,
            BenchmarkId::Gcc,
            BenchmarkId::Milc,
        ],
    };
    let inputs = [
        InputSet::Alt(0),
        InputSet::Alt(1),
        InputSet::Alt(2),
        InputSet::Alt(3),
    ];
    let base = run_mix(&spec, &m, Policy::Baseline, &cache, inputs, 0.3);
    let sw = run_mix(&spec, &m, Policy::SoftwareNt, &cache, inputs, 0.3);
    let ws = weighted_speedup(&sw.speedups_vs(&base));
    assert!(
        ws > 1.02,
        "reference-input plans still help on alternate inputs ({ws:.3})"
    );
}

/// Seed for the co-run oracle mixes below. Part of the failure repro:
/// `generate_mixes(CORUN_ORACLE_MIXES, CORUN_ORACLE_SEED)` regenerates
/// the exact specs a failing assertion names.
const CORUN_ORACLE_SEED: u64 = 0x005E_EDC0;
const CORUN_ORACLE_MIXES: usize = 4;
/// Two simulated miss ratios closer than this are treated as tied when
/// checking that the analytic composition preserves their ordering.
const CORUN_ORDER_GAP: f64 = 0.05;
/// Pinned mean-absolute-error bound of the analytic co-run prediction
/// against the cycle-level simulator, at the AMD LLC size over the
/// seeded mixes above. Measured ~0.005 MAE; pinned with ~10x slack so
/// model drift is caught without flaking on benign refactors.
const CORUN_MAE_BOUND: f64 = 0.05;

#[test]
fn corun_predictions_track_simulated_mixes() {
    // The serving layer's co-run endpoint composes per-app StatStack
    // models analytically; the cycle-level simulator running the same
    // four apps on a shared LLC is the oracle. Over seeded mixes the
    // prediction must (a) rank apps by shared-cache miss ratio the same
    // way the simulator does wherever the simulator's ratios are
    // meaningfully apart, and (b) stay within a pinned MAE of it.
    let m = amd_phenom_ii();
    let cache = cache(&m);
    let llc_bytes = m.hierarchy.llc.size_bytes;
    let specs = generate_mixes(CORUN_ORACLE_MIXES, CORUN_ORACLE_SEED);
    let mut abs_err = 0.0f64;
    let mut samples = 0usize;
    for (mi, spec) in specs.iter().enumerate() {
        let mut co = CoRunModel::new();
        for id in spec.apps {
            co.push(cache.model(id));
        }
        let predicted: Vec<f64> = (0..4).map(|i| co.miss_ratio_bytes(i, llc_bytes)).collect();
        let sim = run_mix(spec, &m, Policy::Baseline, &cache, [InputSet::Ref; 4], 0.3);
        let simulated: Vec<f64> = sim
            .per_app
            .iter()
            .map(|a| a.stats.llc_misses as f64 / a.stats.demand_accesses.max(1) as f64)
            .collect();
        // Repro on failure: the mix index + seed + app names pin down the
        // exact spec without rerunning the whole suite.
        let repro = format!(
            "mix {mi} of generate_mixes({CORUN_ORACLE_MIXES}, {CORUN_ORACLE_SEED:#x}), \
             apps {:?}",
            spec.apps
        );
        for i in 0..4 {
            assert!(
                predicted[i].is_finite() && (0.0..=1.0).contains(&predicted[i]),
                "{repro}: predicted[{i}] = {} out of range",
                predicted[i]
            );
            for j in 0..4 {
                if simulated[i] > simulated[j] + CORUN_ORDER_GAP {
                    assert!(
                        predicted[i] > predicted[j],
                        "{repro}: simulator ranks app {i} ({:?}, mr {:.4}) above app {j} \
                         ({:?}, mr {:.4}) but the composition predicts {:.4} vs {:.4}",
                        spec.apps[i],
                        simulated[i],
                        spec.apps[j],
                        simulated[j],
                        predicted[i],
                        predicted[j]
                    );
                }
            }
            abs_err += (predicted[i] - simulated[i]).abs();
            samples += 1;
        }
    }
    let mae = abs_err / samples as f64;
    eprintln!("corun oracle MAE over {samples} app-slots: {mae:.4}");
    assert!(
        mae < CORUN_MAE_BOUND,
        "co-run MAE {mae:.4} exceeds the pinned bound {CORUN_MAE_BOUND} \
         (seed {CORUN_ORACLE_SEED:#x}, {CORUN_ORACLE_MIXES} mixes)"
    );
}
